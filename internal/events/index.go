package events

import (
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
)

// snapshot is an immutable inverted index over the subscription set.
// Publish reads it through one atomic load; Subscribe/Unsubscribe build
// a fresh snapshot under the bus mutex and swap the pointer, so the
// publish path never blocks on subscription churn (copy-on-write).
//
// Every subscription lives in exactly one partition, chosen by its
// filter shape, so a single event can reach a subscription through at
// most one partition and cross-partition deduplication is unnecessary:
//
//   - all:       no filter at all — matches every event.
//   - byType:    EventTypes filter only — bucketed under each listed
//     type, so the lookup by the event's type is the whole match.
//   - byOrigin:  Origins filter, Subordinate unset — bucketed under
//     each listed origin; an exact lookup of the event's origin finds
//     them. Any EventTypes filter is checked residually.
//   - byPrefix:  Origins filter with Subordinate set — bucketed under
//     each listed prefix; walking the event origin's ancestor chain
//     (bounded by URI depth, ~6 segments) finds them. A subscription
//     listing nested prefixes can be reached through two ancestors of
//     one origin, so prefix-derived matches are deduplicated against
//     each other (and only each other).
//
// Publish cost is therefore O(matching subscribers + origin depth)
// rather than O(total subscriptions).
type snapshot struct {
	all      []*Subscription
	byType   map[string][]*Subscription
	byOrigin map[odata.ID][]*Subscription
	byPrefix map[odata.ID][]*Subscription
	count    int
}

var emptySnapshot = &snapshot{}

// buildSnapshot indexes the current subscription set. It is a full
// rebuild — O(n) per subscribe/unsubscribe — which keeps the structure
// trivially immutable; subscription churn is orders of magnitude rarer
// than publishes, which pay nothing for it.
func buildSnapshot(subs map[string]*Subscription) *snapshot {
	sn := &snapshot{
		byType:   make(map[string][]*Subscription),
		byOrigin: make(map[odata.ID][]*Subscription),
		byPrefix: make(map[odata.ID][]*Subscription),
		count:    len(subs),
	}
	for _, sub := range subs {
		f := sub.Filter
		switch {
		case len(f.Origins) > 0 && f.Subordinate:
			for _, o := range f.Origins {
				sn.byPrefix[o] = append(sn.byPrefix[o], sub)
			}
		case len(f.Origins) > 0:
			for _, o := range f.Origins {
				sn.byOrigin[o] = append(sn.byOrigin[o], sub)
			}
		case len(f.EventTypes) > 0:
			for _, t := range f.EventTypes {
				sn.byType[t] = append(sn.byType[t], sub)
			}
		default:
			sn.all = append(sn.all, sub)
		}
	}
	return sn
}

// match appends every subscription admitting rec to out and returns it.
func (sn *snapshot) match(rec redfish.EventRecord, out []*Subscription) []*Subscription {
	out = append(out, sn.all...)
	if len(sn.byType) > 0 {
		out = append(out, sn.byType[rec.EventType]...)
	}
	if rec.OriginOfCondition == nil || (len(sn.byOrigin) == 0 && len(sn.byPrefix) == 0) {
		return out
	}
	origin := rec.OriginOfCondition.ODataID
	for _, sub := range sn.byOrigin[origin] {
		if typeMatches(sub.Filter.EventTypes, rec.EventType) {
			out = append(out, sub)
		}
	}
	if len(sn.byPrefix) == 0 {
		return out
	}
	// Walk the origin's ancestor chain; Under() treats a prefix as
	// matching itself, so the walk starts at the origin proper.
	firstPrefix := len(out)
	for p := origin; ; {
		for _, sub := range sn.byPrefix[p] {
			if !typeMatches(sub.Filter.EventTypes, rec.EventType) {
				continue
			}
			dup := false
			for _, m := range out[firstPrefix:] {
				if m == sub {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, sub)
			}
		}
		parent := p.Parent()
		if parent == p || parent == "." || parent == "" {
			break
		}
		p = parent
	}
	return out
}

// typeMatches reports whether the (possibly empty, meaning any) type
// list admits t.
func typeMatches(types []string, t string) bool {
	if len(types) == 0 {
		return true
	}
	for _, x := range types {
		if x == t {
			return true
		}
	}
	return false
}

// Package events implements the OFMF event subsystem: a publish/subscribe
// bus carrying Redfish event records to registered destinations. The bus
// is built for fleet scale: an inverted subscription index makes publish
// cost proportional to the matching subscribers rather than the total
// subscription count, the event envelope is encoded once per publish and
// shared across every delivery and retry attempt, and deliveries are
// drained by a bounded worker pool over per-subscription FIFO queues so
// a slow subscriber can neither stall the management plane nor cost a
// dedicated goroutine. Deliveries are retried with a configurable
// attempt count and backoff, matching the Redfish EventService
// DeliveryRetryAttempts/DeliveryRetryIntervalSeconds model.
package events

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ofmf/internal/obsv"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/resilience"
)

// Sink receives delivered events. HTTP destinations and in-process
// subscribers both implement it.
type Sink interface {
	Deliver(ctx context.Context, ev redfish.Event) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(ctx context.Context, ev redfish.Event) error

// Deliver calls f.
func (f SinkFunc) Deliver(ctx context.Context, ev redfish.Event) error { return f(ctx, ev) }

// BytesSink is an optional extension of Sink. Destinations that forward
// the wire form unchanged (webhook POSTs, SSE frames) implement it to
// receive the publish's shared encoding: the bus then marshals the
// event once per publish, not once per subscriber per attempt. The
// payload is shared and must be treated as read-only; eventID is the
// envelope's Redfish event id (the SSE frame id).
type BytesSink interface {
	DeliverBytes(ctx context.Context, eventID string, payload []byte) error
}

// HTTPSink posts events to a subscriber's destination URL using the
// Redfish event payload format.
type HTTPSink struct {
	URL    string
	Client *http.Client
}

// Deliver encodes the event once and posts it. The bus prefers
// DeliverBytes, which shares one encoding across subscribers and retry
// attempts; Deliver exists for direct use.
func (h *HTTPSink) Deliver(ctx context.Context, ev redfish.Event) error {
	body, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("events: marshal: %w", err)
	}
	return h.DeliverBytes(ctx, ev.ID, body)
}

// DeliverBytes posts the pre-encoded payload as JSON and treats any 2xx
// status as success. Each call wraps the shared bytes in a fresh
// bytes.Reader — net/http derives GetBody from it, so redirects and
// every bus-level retry rewind over the same buffer instead of
// re-marshaling the event.
func (h *HTTPSink) DeliverBytes(ctx context.Context, _ string, payload []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.URL, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	obsv.InjectHeaders(ctx, req.Header)
	client := h.Client
	if client == nil {
		client = defaultSinkClient()
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("events: destination returned %s", resp.Status)
	}
	return nil
}

// defaultSinkClient lazily builds the shared client used by sinks that
// do not bring their own: per-attempt timeouts and a per-destination
// circuit breaker, but no transport-level retries — the bus already
// retries deliveries, and webhook POSTs are not idempotent.
var defaultSinkClient = sync.OnceValue(func() *http.Client {
	p := resilience.DefaultPolicy()
	p.MaxAttempts = 1
	return resilience.NewHTTPClient(p)
})

// Filter selects which events a subscription receives. Zero-value filters
// match everything.
type Filter struct {
	// EventTypes restricts delivery to the listed Redfish event types.
	EventTypes []string
	// Origins restricts delivery to events whose OriginOfCondition equals
	// one of the listed resources, or lies beneath one of them when
	// Subordinate is set.
	Origins     []odata.ID
	Subordinate bool
}

// Matches reports whether the filter admits the record.
func (f Filter) Matches(rec redfish.EventRecord) bool {
	if !typeMatches(f.EventTypes, rec.EventType) {
		return false
	}
	if len(f.Origins) > 0 {
		if rec.OriginOfCondition == nil {
			return false
		}
		origin := rec.OriginOfCondition.ODataID
		ok := false
		for _, o := range f.Origins {
			if origin == o || (f.Subordinate && origin.Under(o)) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Config tunes the bus's delivery behaviour.
type Config struct {
	// RetryAttempts is the number of delivery attempts per event (≥1).
	RetryAttempts int
	// RetryInterval is the base delay before the first retry. Successive
	// retries back off exponentially (with jitter) up to RetryMaxInterval.
	RetryInterval time.Duration
	// RetryMaxInterval caps the exponential backoff between retries;
	// defaults to 10×RetryInterval.
	RetryMaxInterval time.Duration
	// QueueDepth bounds each subscription's pending-event queue; events
	// beyond the bound are dropped and counted.
	QueueDepth int
	// Workers bounds the delivery worker pool shared by all
	// subscriptions (default 4×GOMAXPROCS, clamped to [4,64]). Each
	// subscription is drained by at most one worker at a time, so
	// per-subscriber delivery order is FIFO regardless of pool size.
	Workers int
	// Synchronous delivers events inline on the publisher's goroutine
	// instead of through the worker pool. Retries still apply. It
	// exists for the delivery-strategy ablation benchmark.
	Synchronous bool
	// OnDeliveryFailure, when set, is invoked after each delivery that
	// exhausts its retries, with the consecutive-failure count; a
	// successful delivery resets the count. The OFMF uses it to degrade
	// the subscription resource's health in the tree.
	OnDeliveryFailure func(subscriptionID string, consecutive int)
	// PublishObserver, when set, receives the duration of every
	// PublishCtx call (match + enqueue, or inline delivery when
	// Synchronous). The OFMF feeds it into the
	// ofmf_event_publish_seconds histogram.
	PublishObserver func(time.Duration)
	// Tracer, when non-nil, records each delivery as an event.deliver
	// span parented to the publishing request's trace (see PublishCtx),
	// so one trace id follows a mutation from the OFMF to its sinks.
	Tracer *obsv.Tracer
}

// DefaultConfig mirrors the EventService defaults the OFMF advertises.
func DefaultConfig() Config {
	return Config{RetryAttempts: 3, RetryInterval: 50 * time.Millisecond, QueueDepth: 256}
}

// Stats counts delivery outcomes across the bus. Every event routed to
// a subscription lands in exactly one of Delivered, Failed, Dropped or
// DroppedClosed, so after the queues quiesce the counters conserve:
// matched enqueues = Delivered + Failed + Dropped + DroppedClosed. The
// chaos harness asserts this ledger after every churn scenario.
type Stats struct {
	Published int64 // events published
	Delivered int64 // successful deliveries (per subscription)
	Failed    int64 // deliveries abandoned after retries
	Dropped   int64 // events dropped on full queues
	// DroppedClosed counts events discarded because their subscription
	// was closed: queued events thrown away when a subscription retires
	// (Unsubscribe/Close) plus publishes that raced a retirement.
	DroppedClosed int64
	Encodes       int64 // envelope encodings (exactly one per publish that reached a byte sink)
}

// PoolStats is a snapshot of the delivery worker pool.
type PoolStats struct {
	Workers int   // pool size (0 in Synchronous mode)
	Busy    int64 // workers currently delivering
	Queued  int64 // events waiting in subscription queues
}

// drainBatch bounds how many events one worker delivers from a single
// subscription before re-queueing it, so a deep queue cannot starve
// other ready subscriptions of the pool.
const drainBatch = 32

// Subscription is one registered event destination.
type Subscription struct {
	ID      string
	Context string
	Filter  Filter

	sink   Sink
	ctx    context.Context // cancelled on Unsubscribe/Close: aborts in-flight backoff waits
	cancel context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond // signalled when a draining worker parks the subscription
	pending []*envelope
	headIdx int  // pending[:headIdx] already delivered (cleared lazily)
	active  bool // a worker currently owns this subscription's queue
	closed  bool

	consecutive int64 // consecutive delivery failures (atomic)
}

// queueLen returns the pending count. Callers hold s.mu.
func (s *Subscription) queueLen() int { return len(s.pending) - s.headIdx }

// readyQueue is the unbounded list of subscriptions with pending events
// awaiting a worker. Unbounded so a publish burst can never block the
// publisher; memory is bounded by the subscription count (each
// subscription is enqueued at most once — the active flag).
type readyQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []*Subscription
	closed bool
}

func newReadyQueue() *readyQueue {
	r := &readyQueue{}
	r.cond = sync.NewCond(&r.mu)
	return r
}

func (r *readyQueue) push(sub *Subscription) {
	r.mu.Lock()
	if !r.closed {
		r.q = append(r.q, sub)
		r.cond.Signal()
	}
	r.mu.Unlock()
}

// pop blocks until a subscription is ready or the queue is closed. A
// closed queue still drains its remaining entries so every active
// subscription gets parked before the workers exit.
func (r *readyQueue) pop() (*Subscription, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.q) == 0 && !r.closed {
		r.cond.Wait()
	}
	if len(r.q) == 0 {
		return nil, false
	}
	sub := r.q[0]
	r.q[0] = nil
	r.q = r.q[1:]
	return sub, true
}

func (r *readyQueue) close() {
	r.mu.Lock()
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
}

// Bus fans events out to subscriptions.
type Bus struct {
	cfg     Config
	backoff resilience.Backoff

	// snap is the publish path's copy-on-write subscription index;
	// PublishCtx takes no lock.
	snap atomic.Pointer[snapshot]

	mu     sync.Mutex // guards subs, nextID, closed, snapshot swaps
	subs   map[string]*Subscription
	nextID int64
	closed bool

	ready *readyQueue
	wg    sync.WaitGroup

	published     int64
	delivered     int64
	failed        int64
	dropped       int64
	droppedClosed int64
	encodes       int64
	queued    int64 // events across all subscription queues
	busy      int64 // workers currently delivering
}

// NewBus creates a bus with the given configuration. Zero-valued fields
// are replaced with defaults.
func NewBus(cfg Config) *Bus {
	def := DefaultConfig()
	if cfg.RetryAttempts <= 0 {
		cfg.RetryAttempts = def.RetryAttempts
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = def.RetryInterval
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = def.QueueDepth
	}
	if cfg.RetryMaxInterval <= 0 {
		cfg.RetryMaxInterval = 10 * cfg.RetryInterval
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4 * runtime.GOMAXPROCS(0)
		if cfg.Workers < 4 {
			cfg.Workers = 4
		}
		if cfg.Workers > 64 {
			cfg.Workers = 64
		}
	}
	b := &Bus{
		cfg:     cfg,
		backoff: resilience.Backoff{Base: cfg.RetryInterval, Max: cfg.RetryMaxInterval, Jitter: 0.5},
		subs:    make(map[string]*Subscription),
		ready:   newReadyQueue(),
	}
	b.snap.Store(emptySnapshot)
	if !cfg.Synchronous {
		b.wg.Add(cfg.Workers)
		for i := 0; i < cfg.Workers; i++ {
			go b.worker()
		}
	}
	return b
}

// ErrClosed is returned when operating on a closed bus.
var ErrClosed = errors.New("events: bus closed")

// Subscribe registers a sink with a filter and returns the subscription.
func (b *Bus) Subscribe(sink Sink, filter Filter, contextStr string) (*Subscription, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	b.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	sub := &Subscription{
		ID:      fmt.Sprintf("%d", b.nextID),
		Context: contextStr,
		Filter:  filter,
		sink:    sink,
		ctx:     ctx,
		cancel:  cancel,
	}
	sub.cond = sync.NewCond(&sub.mu)
	b.subs[sub.ID] = sub
	b.snap.Store(buildSnapshot(b.subs))
	return sub, nil
}

// Unsubscribe removes the subscription, cancels its in-flight delivery
// waits and returns once no worker is draining it.
func (b *Bus) Unsubscribe(id string) error {
	b.mu.Lock()
	sub, ok := b.subs[id]
	if ok {
		delete(b.subs, id)
		b.snap.Store(buildSnapshot(b.subs))
	}
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("events: no subscription %q", id)
	}
	b.retire(sub)
	sub.mu.Lock()
	for sub.active {
		sub.cond.Wait()
	}
	sub.mu.Unlock()
	return nil
}

// retire marks the subscription closed, discards its queue (counting
// the discards, so the delivery ledger stays conserved) and cancels any
// in-flight delivery wait.
func (b *Bus) retire(sub *Subscription) {
	sub.mu.Lock()
	sub.closed = true
	if n := int64(sub.queueLen()); n > 0 {
		atomic.AddInt64(&b.queued, -n)
		atomic.AddInt64(&b.droppedClosed, n)
	}
	sub.pending, sub.headIdx = nil, 0
	sub.mu.Unlock()
	sub.cancel()
}

// Subscriptions returns a snapshot of current subscription ids.
func (b *Bus) Subscriptions() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	ids := make([]string, 0, len(b.subs))
	for id := range b.subs {
		ids = append(ids, id)
	}
	return ids
}

// Publish fans the record out to every matching subscription with no
// originating trace context.
func (b *Bus) Publish(rec redfish.EventRecord) {
	b.PublishCtx(context.Background(), rec)
}

// PublishCtx fans the record out to every matching subscription,
// capturing ctx's span context so deliveries — queued or inline —
// happen inside the publishing request's trace. Only the trace identity
// is captured: queued deliveries are not cancelled when ctx is.
//
// The subscription index is read through one atomic snapshot load, so
// publishing never contends with Subscribe/Unsubscribe; cost scales
// with the matching subscribers, not the total subscription count.
func (b *Bus) PublishCtx(ctx context.Context, rec redfish.EventRecord) {
	start := time.Now()
	atomic.AddInt64(&b.published, 1)
	sc, _ := obsv.SpanContextFrom(ctx)
	env := newEnvelope(rec, sc)
	targets := b.snap.Load().match(rec, nil)
	for _, sub := range targets {
		if b.cfg.Synchronous {
			b.attempt(sub, env)
			continue
		}
		b.enqueue(sub, env)
	}
	if b.cfg.PublishObserver != nil {
		b.cfg.PublishObserver(time.Since(start))
	}
}

// enqueue appends the envelope to the subscription's FIFO queue and
// hands the subscription to the worker pool when it is not already
// owned by (or ready for) a worker.
func (b *Bus) enqueue(sub *Subscription, env *envelope) {
	sub.mu.Lock()
	if sub.closed {
		sub.mu.Unlock()
		// The publish matched the pre-retirement snapshot: count the
		// discard so published events stay conserved across the stats.
		atomic.AddInt64(&b.droppedClosed, 1)
		return
	}
	if sub.queueLen() >= b.cfg.QueueDepth {
		sub.mu.Unlock()
		atomic.AddInt64(&b.dropped, 1)
		return
	}
	// Compact the lazily consumed head before the backing array grows.
	if sub.headIdx > 0 && len(sub.pending) == cap(sub.pending) {
		n := copy(sub.pending, sub.pending[sub.headIdx:])
		sub.pending, sub.headIdx = sub.pending[:n], 0
	}
	sub.pending = append(sub.pending, env)
	wake := !sub.active
	if wake {
		sub.active = true
	}
	sub.mu.Unlock()
	atomic.AddInt64(&b.queued, 1)
	if wake {
		b.ready.push(sub)
	}
}

// worker drains ready subscriptions until the bus closes.
func (b *Bus) worker() {
	defer b.wg.Done()
	for {
		sub, ok := b.ready.pop()
		if !ok {
			return
		}
		atomic.AddInt64(&b.busy, 1)
		b.drain(sub)
		atomic.AddInt64(&b.busy, -1)
	}
}

// drain delivers the subscription's queued events in FIFO order. Only
// the owning worker pops the queue, so per-subscriber ordering holds
// regardless of pool size. After drainBatch events the subscription is
// re-queued so one deep queue cannot monopolize a worker.
func (b *Bus) drain(sub *Subscription) {
	for n := 0; ; n++ {
		sub.mu.Lock()
		if sub.closed || sub.queueLen() == 0 {
			sub.active = false
			sub.cond.Broadcast()
			sub.mu.Unlock()
			return
		}
		if n >= drainBatch {
			sub.mu.Unlock()
			b.ready.push(sub) // still active: ownership passes with the queue entry
			return
		}
		env := sub.pending[sub.headIdx]
		sub.pending[sub.headIdx] = nil
		sub.headIdx++
		if sub.headIdx == len(sub.pending) {
			sub.pending, sub.headIdx = sub.pending[:0], 0
		}
		sub.mu.Unlock()
		atomic.AddInt64(&b.queued, -1)
		b.attempt(sub, env)
	}
}

// attempt delivers one envelope to the subscription, retrying with
// backoff. The wire payload is resolved once before the retry loop, so
// every attempt reuses the same bytes.
func (b *Bus) attempt(sub *Subscription, env *envelope) {
	ctx := obsv.ContextWithRemoteSpanContext(sub.ctx, env.sc)
	ctx, span := b.cfg.Tracer.StartIfTraced(ctx, "event.deliver")
	span.SetAttr("subscription", sub.ID)
	span.SetAttr("event_type", env.rec.EventType)
	var deliver func(context.Context) error
	if bs, ok := sub.sink.(BytesSink); ok {
		body, err := env.body(sub.Context, func() { atomic.AddInt64(&b.encodes, 1) })
		if err != nil {
			span.EndErr(err)
			b.countFailure(sub)
			return
		}
		eventID := env.rec.EventID
		deliver = func(ctx context.Context) error { return bs.DeliverBytes(ctx, eventID, body) }
	} else {
		ev := env.event(sub.Context)
		deliver = func(ctx context.Context) error { return sub.sink.Deliver(ctx, ev) }
	}
	var err error
	for i := 0; i < b.cfg.RetryAttempts; i++ {
		if i > 0 {
			// Exponential backoff with jitter: a flapping destination is
			// given progressively more room to recover, and concurrent
			// deliveries don't re-knock in lockstep.
			select {
			case <-ctx.Done():
				// Only retirement cancels sub.ctx: the event is being
				// discarded with its subscription, not abandoned on error.
				atomic.AddInt64(&b.droppedClosed, 1)
				span.EndErr(ctx.Err())
				return
			case <-time.After(b.backoff.Delay(i)):
			}
		}
		if err = deliver(ctx); err == nil {
			atomic.AddInt64(&b.delivered, 1)
			atomic.StoreInt64(&sub.consecutive, 0)
			span.End()
			return
		}
	}
	span.EndErr(err)
	b.countFailure(sub)
}

// countFailure records one delivery abandoned after retries.
func (b *Bus) countFailure(sub *Subscription) {
	atomic.AddInt64(&b.failed, 1)
	n := atomic.AddInt64(&sub.consecutive, 1)
	if b.cfg.OnDeliveryFailure != nil {
		b.cfg.OnDeliveryFailure(sub.ID, int(n))
	}
}

// Stats returns a snapshot of delivery counters.
func (b *Bus) Stats() Stats {
	return Stats{
		Published:     atomic.LoadInt64(&b.published),
		Delivered:     atomic.LoadInt64(&b.delivered),
		Failed:        atomic.LoadInt64(&b.failed),
		Dropped:       atomic.LoadInt64(&b.dropped),
		DroppedClosed: atomic.LoadInt64(&b.droppedClosed),
		Encodes:       atomic.LoadInt64(&b.encodes),
	}
}

// Pool returns a snapshot of the delivery worker pool.
func (b *Bus) Pool() PoolStats {
	workers := b.cfg.Workers
	if b.cfg.Synchronous {
		workers = 0
	}
	return PoolStats{
		Workers: workers,
		Busy:    atomic.LoadInt64(&b.busy),
		Queued:  atomic.LoadInt64(&b.queued),
	}
}

// Close stops the worker pool. The bus accepts no further
// subscriptions; Publish becomes a no-op.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*Subscription, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.subs = make(map[string]*Subscription)
	b.snap.Store(emptySnapshot)
	b.mu.Unlock()
	for _, s := range subs {
		b.retire(s)
	}
	// Closing the ready queue lets workers drain the remaining entries
	// (parking each retired subscription) and then exit.
	b.ready.close()
	b.wg.Wait()
}

// Record builds an event record with the current timestamp.
func Record(eventType, eventID, message string, origin odata.ID) redfish.EventRecord {
	rec := redfish.EventRecord{
		EventType:      eventType,
		EventID:        eventID,
		EventTimestamp: redfish.Timestamp(time.Now()),
		Message:        message,
		Severity:       "OK",
	}
	if !origin.IsZero() {
		ref := odata.NewRef(origin)
		rec.OriginOfCondition = &ref
	}
	return rec
}

// Package events implements the OFMF event subsystem: a publish/subscribe
// bus carrying Redfish event records to registered destinations. Each
// subscription gets a bounded delivery queue drained by its own worker so a
// slow subscriber cannot stall the management plane; deliveries are retried
// with a configurable attempt count and backoff, matching the Redfish
// EventService DeliveryRetryAttempts/DeliveryRetryIntervalSeconds model.
package events

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ofmf/internal/obsv"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/resilience"
)

// Sink receives delivered events. HTTP destinations and in-process
// subscribers both implement it.
type Sink interface {
	Deliver(ctx context.Context, ev redfish.Event) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(ctx context.Context, ev redfish.Event) error

// Deliver calls f.
func (f SinkFunc) Deliver(ctx context.Context, ev redfish.Event) error { return f(ctx, ev) }

// HTTPSink posts events to a subscriber's destination URL using the
// Redfish event payload format.
type HTTPSink struct {
	URL    string
	Client *http.Client
}

// Deliver posts the event as JSON and treats any 2xx status as success.
func (h *HTTPSink) Deliver(ctx context.Context, ev redfish.Event) error {
	body, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("events: marshal: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.URL, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	obsv.InjectHeaders(ctx, req.Header)
	client := h.Client
	if client == nil {
		client = defaultSinkClient()
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("events: destination returned %s", resp.Status)
	}
	return nil
}

// defaultSinkClient lazily builds the shared client used by sinks that
// do not bring their own: per-attempt timeouts and a per-destination
// circuit breaker, but no transport-level retries — the bus already
// retries deliveries, and webhook POSTs are not idempotent.
var defaultSinkClient = sync.OnceValue(func() *http.Client {
	p := resilience.DefaultPolicy()
	p.MaxAttempts = 1
	return resilience.NewHTTPClient(p)
})

// Filter selects which events a subscription receives. Zero-value filters
// match everything.
type Filter struct {
	// EventTypes restricts delivery to the listed Redfish event types.
	EventTypes []string
	// Origins restricts delivery to events whose OriginOfCondition equals
	// one of the listed resources, or lies beneath one of them when
	// Subordinate is set.
	Origins     []odata.ID
	Subordinate bool
}

// Matches reports whether the filter admits the record.
func (f Filter) Matches(rec redfish.EventRecord) bool {
	if len(f.EventTypes) > 0 {
		ok := false
		for _, t := range f.EventTypes {
			if t == rec.EventType {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(f.Origins) > 0 {
		if rec.OriginOfCondition == nil {
			return false
		}
		origin := rec.OriginOfCondition.ODataID
		ok := false
		for _, o := range f.Origins {
			if origin == o || (f.Subordinate && origin.Under(o)) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Config tunes the bus's delivery behaviour.
type Config struct {
	// RetryAttempts is the number of delivery attempts per event (≥1).
	RetryAttempts int
	// RetryInterval is the base delay before the first retry. Successive
	// retries back off exponentially (with jitter) up to RetryMaxInterval.
	RetryInterval time.Duration
	// RetryMaxInterval caps the exponential backoff between retries;
	// defaults to 10×RetryInterval.
	RetryMaxInterval time.Duration
	// QueueDepth bounds each subscription's pending-event queue; events
	// beyond the bound are dropped and counted.
	QueueDepth int
	// Synchronous delivers events inline on the publisher's goroutine
	// instead of through per-subscription queues. Retries still apply. It
	// exists for the delivery-strategy ablation benchmark.
	Synchronous bool
	// OnDeliveryFailure, when set, is invoked after each delivery that
	// exhausts its retries, with the consecutive-failure count; a
	// successful delivery resets the count. The OFMF uses it to degrade
	// the subscription resource's health in the tree.
	OnDeliveryFailure func(subscriptionID string, consecutive int)
	// Tracer, when non-nil, records each delivery as an event.deliver
	// span parented to the publishing request's trace (see PublishCtx),
	// so one trace id follows a mutation from the OFMF to its sinks.
	Tracer *obsv.Tracer
}

// DefaultConfig mirrors the EventService defaults the OFMF advertises.
func DefaultConfig() Config {
	return Config{RetryAttempts: 3, RetryInterval: 50 * time.Millisecond, QueueDepth: 256}
}

// Stats counts delivery outcomes across the bus.
type Stats struct {
	Published int64 // events published
	Delivered int64 // successful deliveries (per subscription)
	Failed    int64 // deliveries abandoned after retries
	Dropped   int64 // events dropped on full queues
}

// Subscription is one registered event destination.
type Subscription struct {
	ID      string
	Context string
	Filter  Filter

	sink        Sink
	queue       chan queued
	cancel      context.CancelFunc
	done        chan struct{}
	consecutive int64 // consecutive delivery failures (atomic)
}

// queued is one event waiting in a subscription queue, carrying the
// span context of the publishing request so delivery — which happens
// later, on the worker goroutine — still belongs to the same trace.
type queued struct {
	rec redfish.EventRecord
	sc  obsv.SpanContext
}

// Bus fans events out to subscriptions.
type Bus struct {
	cfg     Config
	backoff resilience.Backoff

	mu     sync.RWMutex
	subs   map[string]*Subscription
	nextID int64
	closed bool

	published int64
	delivered int64
	failed    int64
	dropped   int64
}

// NewBus creates a bus with the given configuration. Zero-valued fields
// are replaced with defaults.
func NewBus(cfg Config) *Bus {
	def := DefaultConfig()
	if cfg.RetryAttempts <= 0 {
		cfg.RetryAttempts = def.RetryAttempts
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = def.RetryInterval
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = def.QueueDepth
	}
	if cfg.RetryMaxInterval <= 0 {
		cfg.RetryMaxInterval = 10 * cfg.RetryInterval
	}
	return &Bus{
		cfg:     cfg,
		backoff: resilience.Backoff{Base: cfg.RetryInterval, Max: cfg.RetryMaxInterval, Jitter: 0.5},
		subs:    make(map[string]*Subscription),
	}
}

// ErrClosed is returned when operating on a closed bus.
var ErrClosed = errors.New("events: bus closed")

// Subscribe registers a sink with a filter and returns the subscription.
func (b *Bus) Subscribe(sink Sink, filter Filter, contextStr string) (*Subscription, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	b.nextID++
	sub := &Subscription{
		ID:      fmt.Sprintf("%d", b.nextID),
		Context: contextStr,
		Filter:  filter,
		sink:    sink,
		done:    make(chan struct{}),
	}
	if !b.cfg.Synchronous {
		ctx, cancel := context.WithCancel(context.Background())
		sub.cancel = cancel
		sub.queue = make(chan queued, b.cfg.QueueDepth)
		go b.drain(ctx, sub)
	} else {
		close(sub.done)
	}
	b.subs[sub.ID] = sub
	return sub, nil
}

// Unsubscribe removes the subscription and stops its worker.
func (b *Bus) Unsubscribe(id string) error {
	b.mu.Lock()
	sub, ok := b.subs[id]
	if ok {
		delete(b.subs, id)
	}
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("events: no subscription %q", id)
	}
	if sub.cancel != nil {
		sub.cancel()
		<-sub.done
	}
	return nil
}

// Subscriptions returns a snapshot of current subscription ids.
func (b *Bus) Subscriptions() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	ids := make([]string, 0, len(b.subs))
	for id := range b.subs {
		ids = append(ids, id)
	}
	return ids
}

// Publish fans the record out to every matching subscription with no
// originating trace context.
func (b *Bus) Publish(rec redfish.EventRecord) {
	b.PublishCtx(context.Background(), rec)
}

// PublishCtx fans the record out to every matching subscription,
// capturing ctx's span context so deliveries — queued or inline —
// happen inside the publishing request's trace. Only the trace identity
// is captured: queued deliveries are not cancelled when ctx is.
func (b *Bus) PublishCtx(ctx context.Context, rec redfish.EventRecord) {
	atomic.AddInt64(&b.published, 1)
	q := queued{rec: rec}
	q.sc, _ = obsv.SpanContextFrom(ctx)
	b.mu.RLock()
	targets := make([]*Subscription, 0, len(b.subs))
	for _, sub := range b.subs {
		if sub.Filter.Matches(rec) {
			targets = append(targets, sub)
		}
	}
	sync := b.cfg.Synchronous
	b.mu.RUnlock()

	for _, sub := range targets {
		if sync {
			b.attempt(context.Background(), sub, q)
			continue
		}
		select {
		case sub.queue <- q:
		default:
			atomic.AddInt64(&b.dropped, 1)
		}
	}
}

func (b *Bus) drain(ctx context.Context, sub *Subscription) {
	defer close(sub.done)
	for {
		select {
		case <-ctx.Done():
			return
		case q := <-sub.queue:
			b.attempt(ctx, sub, q)
		}
	}
}

func (b *Bus) attempt(ctx context.Context, sub *Subscription, q queued) {
	rec := q.rec
	ctx = obsv.ContextWithRemoteSpanContext(ctx, q.sc)
	ctx, span := b.cfg.Tracer.StartIfTraced(ctx, "event.deliver")
	span.SetAttr("subscription", sub.ID)
	span.SetAttr("event_type", rec.EventType)
	ev := redfish.Event{
		ODataType: redfish.TypeEvent,
		ID:        rec.EventID,
		Name:      "OFMF Event",
		Context:   sub.Context,
		Events:    []redfish.EventRecord{rec},
	}
	var err error
	for i := 0; i < b.cfg.RetryAttempts; i++ {
		if i > 0 {
			// Exponential backoff with jitter: a flapping destination is
			// given progressively more room to recover, and concurrent
			// subscription workers don't re-knock in lockstep.
			select {
			case <-ctx.Done():
				span.EndErr(ctx.Err())
				return
			case <-time.After(b.backoff.Delay(i)):
			}
		}
		if err = sub.sink.Deliver(ctx, ev); err == nil {
			atomic.AddInt64(&b.delivered, 1)
			atomic.StoreInt64(&sub.consecutive, 0)
			span.End()
			return
		}
	}
	span.EndErr(err)
	atomic.AddInt64(&b.failed, 1)
	n := atomic.AddInt64(&sub.consecutive, 1)
	if b.cfg.OnDeliveryFailure != nil {
		b.cfg.OnDeliveryFailure(sub.ID, int(n))
	}
}

// Stats returns a snapshot of delivery counters.
func (b *Bus) Stats() Stats {
	return Stats{
		Published: atomic.LoadInt64(&b.published),
		Delivered: atomic.LoadInt64(&b.delivered),
		Failed:    atomic.LoadInt64(&b.failed),
		Dropped:   atomic.LoadInt64(&b.dropped),
	}
}

// Close stops all subscription workers. The bus accepts no further
// subscriptions; Publish becomes a no-op for queued subscriptions.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*Subscription, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.subs = make(map[string]*Subscription)
	b.mu.Unlock()
	for _, s := range subs {
		if s.cancel != nil {
			s.cancel()
			<-s.done
		}
	}
}

// Record builds an event record with the current timestamp.
func Record(eventType, eventID, message string, origin odata.ID) redfish.EventRecord {
	rec := redfish.EventRecord{
		EventType:      eventType,
		EventID:        eventID,
		EventTimestamp: redfish.Timestamp(time.Now()),
		Message:        message,
		Severity:       "OK",
	}
	if !origin.IsZero() {
		ref := odata.NewRef(origin)
		rec.OriginOfCondition = &ref
	}
	return rec
}

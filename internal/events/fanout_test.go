package events

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"ofmf/internal/odata"
	"ofmf/internal/redfish"
)

// byteCollector records the shared payloads the bus hands a BytesSink.
type byteCollector struct {
	mu       sync.Mutex
	payloads [][]byte
	ids      []string
}

func (c *byteCollector) Deliver(ctx context.Context, ev redfish.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	return c.DeliverBytes(ctx, ev.ID, data)
}

func (c *byteCollector) DeliverBytes(_ context.Context, eventID string, payload []byte) error {
	c.mu.Lock()
	c.payloads = append(c.payloads, payload)
	c.ids = append(c.ids, eventID)
	c.mu.Unlock()
	return nil
}

func (c *byteCollector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.payloads)
}

// TestMarshalOncePerPublish proves the headline envelope property: one
// publish reaching many byte sinks performs exactly one encode, and
// context-free subscribers share the very same backing bytes.
func TestMarshalOncePerPublish(t *testing.T) {
	b := NewBus(Config{})
	defer b.Close()
	const nSubs = 8
	sinks := make([]*byteCollector, nSubs)
	for i := range sinks {
		sinks[i] = &byteCollector{}
		if _, err := b.Subscribe(sinks[i], Filter{}, ""); err != nil {
			t.Fatal(err)
		}
	}
	b.Publish(Record(redfish.EventResourceAdded, "once-1", "added", "/redfish/v1/Systems/S1"))
	waitFor(t, func() bool {
		for _, s := range sinks {
			if s.count() != 1 {
				return false
			}
		}
		return true
	})
	if got := b.Stats().Encodes; got != 1 {
		t.Fatalf("Encodes = %d after one publish to %d subscribers, want 1", got, nSubs)
	}
	first := sinks[0].payloads[0]
	for i, s := range sinks {
		if &s.payloads[0][0] != &first[0] {
			t.Fatalf("subscriber %d got a copied payload; context-free deliveries must share bytes", i)
		}
	}
	var ev redfish.Event
	if err := json.Unmarshal(first, &ev); err != nil {
		t.Fatalf("shared payload is not a valid Event: %v", err)
	}
	if ev.ID != "once-1" || len(ev.Events) != 1 || ev.Events[0].Message != "added" {
		t.Fatalf("payload round-trip = %+v", ev)
	}
	if ev.ODataType != redfish.TypeEvent {
		t.Fatalf("payload @odata.type = %q", ev.ODataType)
	}
}

// TestContextSplicedWithoutReencode checks the per-subscription Context
// is patched into the shared encoding rather than re-marshaling the
// records: two subscribers with different contexts still cost one
// encode, and each sees its own Context on the wire.
func TestContextSplicedWithoutReencode(t *testing.T) {
	b := NewBus(Config{})
	defer b.Close()
	plain, tagged := &byteCollector{}, &byteCollector{}
	if _, err := b.Subscribe(plain, Filter{}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(tagged, Filter{}, "dashboard-42"); err != nil {
		t.Fatal(err)
	}
	b.Publish(Record(redfish.EventResourceUpdated, "ctx-1", "updated", "/redfish/v1/Systems/S1"))
	waitFor(t, func() bool { return plain.count() == 1 && tagged.count() == 1 })
	if got := b.Stats().Encodes; got != 1 {
		t.Fatalf("Encodes = %d, want 1 (Context splice must not re-encode)", got)
	}
	var ev redfish.Event
	if err := json.Unmarshal(tagged.payloads[0], &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Context != "dashboard-42" {
		t.Fatalf("tagged payload Context = %q, want dashboard-42", ev.Context)
	}
	if ev.Events[0].Message != "updated" {
		t.Fatalf("tagged payload events = %+v", ev.Events)
	}
	var base redfish.Event
	if err := json.Unmarshal(plain.payloads[0], &base); err != nil {
		t.Fatal(err)
	}
	if base.Context != "" {
		t.Fatalf("plain payload Context = %q, want empty", base.Context)
	}
}

// TestPerSubscriberFIFOOrdering proves per-subscriber delivery order
// survives the shared worker pool: with more queued events than the
// drain batch and fewer workers than subscribers, every subscriber
// still sees the publish sequence in order.
func TestPerSubscriberFIFOOrdering(t *testing.T) {
	const nSubs, nEvents = 5, 200
	b := NewBus(Config{Workers: 2, QueueDepth: nEvents})
	defer b.Close()
	sinks := make([]*collector, nSubs)
	for i := range sinks {
		sinks[i] = &collector{}
		if _, err := b.Subscribe(sinks[i], Filter{}, ""); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nEvents; i++ {
		b.Publish(Record(redfish.EventResourceUpdated, strconv.Itoa(i), "seq", "/redfish/v1/Systems/S1"))
	}
	waitFor(t, func() bool {
		for _, s := range sinks {
			if s.count() != nEvents {
				return false
			}
		}
		return true
	})
	if d := b.Stats().Dropped; d != 0 {
		t.Fatalf("dropped %d events with sufficient queue depth", d)
	}
	for si, s := range sinks {
		s.mu.Lock()
		for i, ev := range s.evs {
			if ev.ID != strconv.Itoa(i) {
				s.mu.Unlock()
				t.Fatalf("subscriber %d event %d has id %q: out of order", si, i, ev.ID)
			}
		}
		s.mu.Unlock()
	}
}

// TestPublishDuringUnsubscribeRace hammers the copy-on-write index:
// publishes race subscription churn with no locks shared between them.
// Run under -race; the assertions are secondary to the detector.
func TestPublishDuringUnsubscribeRace(t *testing.T) {
	b := NewBus(Config{RetryAttempts: 1})
	defer b.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b.Publish(Record(redfish.EventResourceUpdated, strconv.Itoa(i), "race", "/redfish/v1/Systems/S1"))
			}
		}()
	}
	for i := 0; i < 100; i++ {
		c := &collector{}
		sub, err := b.Subscribe(c, Filter{EventTypes: []string{redfish.EventResourceUpdated}}, "")
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Unsubscribe(sub.ID); err != nil {
			t.Fatal(err)
		}
		// Unsubscribe returned: the count is final, later publishes must
		// not reach the retired sink.
		n := c.count()
		b.Publish(Record(redfish.EventResourceUpdated, "after", "race", "/redfish/v1/Systems/S1"))
		if got := c.count(); got != n {
			t.Fatalf("iteration %d: delivery after Unsubscribe returned (%d -> %d)", i, n, got)
		}
	}
	close(stop)
	wg.Wait()
}

// TestPublishAfterCloseRace races Close against publishers: no panics,
// and publishes landing after Close are silent no-ops.
func TestPublishAfterCloseRace(t *testing.T) {
	b := NewBus(Config{RetryAttempts: 1})
	c := &collector{}
	if _, err := b.Subscribe(c, Filter{}, ""); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Publish(Record(redfish.EventResourceUpdated, fmt.Sprintf("%d-%d", g, i), "close race", "/redfish/v1/Systems/S1"))
			}
		}(g)
	}
	b.Close()
	wg.Wait()
	if _, err := b.Subscribe(&collector{}, Filter{}, ""); err != ErrClosed {
		t.Fatalf("Subscribe after Close = %v, want ErrClosed", err)
	}
	n := c.count()
	b.Publish(Record(redfish.EventResourceUpdated, "post-close", "x", "/redfish/v1/Systems/S1"))
	if got := c.count(); got != n {
		t.Fatalf("publish after Close delivered (%d -> %d)", n, got)
	}
}

// TestSubordinatePrefixDedup covers the one index partition that can
// reach a subscription twice: nested Subordinate prefixes both covering
// the event origin must still deliver exactly once.
func TestSubordinatePrefixDedup(t *testing.T) {
	b := NewBus(Config{Synchronous: true, RetryAttempts: 1})
	defer b.Close()
	c := &collector{}
	if _, err := b.Subscribe(c, Filter{
		Origins:     []odata.ID{"/redfish/v1/Systems", "/redfish/v1/Systems/S1"},
		Subordinate: true,
	}, ""); err != nil {
		t.Fatal(err)
	}
	b.Publish(Record(redfish.EventResourceUpdated, "1", "x", "/redfish/v1/Systems/S1/Memory/M1"))
	if got := c.count(); got != 1 {
		t.Fatalf("delivered %d times through nested prefixes, want exactly 1", got)
	}
}

// noopByteSink is the benchmark sink: delivery cost ~0 so the measured
// time is the bus's own match + encode + enqueue work.
type noopByteSink struct{ delivered int64 }

func (n *noopByteSink) Deliver(context.Context, redfish.Event) error { return nil }
func (n *noopByteSink) DeliverBytes(context.Context, string, []byte) error {
	atomic.AddInt64(&n.delivered, 1)
	return nil
}

// BenchmarkEventFanout measures publish cost as the subscription set
// grows with *non-matching* subscribers: one StatusChange subscriber
// matches, N-1 Alert subscribers must cost nothing. Flat ns/op across
// 100→10k subscriptions is the inverted index working; the old linear
// filter scan grew ~100× over the same range.
func BenchmarkEventFanout(b *testing.B) {
	for _, subs := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			bus := NewBus(Config{Synchronous: true, RetryAttempts: 1})
			defer bus.Close()
			sink := &noopByteSink{}
			for i := 0; i < subs-1; i++ {
				if _, err := bus.Subscribe(sink, Filter{EventTypes: []string{redfish.EventAlert}}, ""); err != nil {
					b.Fatal(err)
				}
			}
			match := &noopByteSink{}
			if _, err := bus.Subscribe(match, Filter{EventTypes: []string{redfish.EventStatusChange}}, ""); err != nil {
				b.Fatal(err)
			}
			rec := Record(redfish.EventStatusChange, "bench", "status changed", "/redfish/v1/Systems/S1")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bus.Publish(rec)
			}
			b.StopTimer()
			if got := atomic.LoadInt64(&match.delivered); got != int64(b.N) {
				b.Fatalf("matching subscriber saw %d of %d publishes", got, b.N)
			}
		})
	}
}

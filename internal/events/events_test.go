package events

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ofmf/internal/odata"
	"ofmf/internal/redfish"
)

// collector is a Sink that records delivered events.
type collector struct {
	mu   sync.Mutex
	evs  []redfish.Event
	fail int32 // number of initial deliveries to fail
}

func (c *collector) Deliver(_ context.Context, ev redfish.Event) error {
	if atomic.LoadInt32(&c.fail) > 0 {
		atomic.AddInt32(&c.fail, -1)
		return errors.New("transient")
	}
	c.mu.Lock()
	c.evs = append(c.evs, ev)
	c.mu.Unlock()
	return nil
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.evs)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not met before deadline")
}

func TestPublishDelivers(t *testing.T) {
	b := NewBus(Config{})
	defer b.Close()
	c := &collector{}
	if _, err := b.Subscribe(c, Filter{}, "ctx1"); err != nil {
		t.Fatal(err)
	}
	b.Publish(Record(redfish.EventResourceAdded, "1", "added", "/redfish/v1/Systems/S1"))
	waitFor(t, func() bool { return c.count() == 1 })
	c.mu.Lock()
	ev := c.evs[0]
	c.mu.Unlock()
	if ev.Context != "ctx1" {
		t.Errorf("Context = %q", ev.Context)
	}
	if len(ev.Events) != 1 || ev.Events[0].EventType != redfish.EventResourceAdded {
		t.Errorf("Events = %+v", ev.Events)
	}
	if ev.Events[0].OriginOfCondition.ODataID != "/redfish/v1/Systems/S1" {
		t.Errorf("origin = %v", ev.Events[0].OriginOfCondition)
	}
}

func TestEventTypeFilter(t *testing.T) {
	b := NewBus(Config{})
	defer b.Close()
	c := &collector{}
	if _, err := b.Subscribe(c, Filter{EventTypes: []string{redfish.EventAlert}}, ""); err != nil {
		t.Fatal(err)
	}
	b.Publish(Record(redfish.EventResourceAdded, "1", "ignored", ""))
	b.Publish(Record(redfish.EventAlert, "2", "kept", ""))
	waitFor(t, func() bool { return c.count() == 1 })
	time.Sleep(20 * time.Millisecond)
	if c.count() != 1 {
		t.Errorf("delivered %d, want 1", c.count())
	}
}

func TestOriginFilterSubordinate(t *testing.T) {
	cases := []struct {
		sub    bool
		origin odata.ID
		want   bool
	}{
		{false, "/redfish/v1/Fabrics/CXL", true},
		{false, "/redfish/v1/Fabrics/CXL/Endpoints/E1", false},
		{true, "/redfish/v1/Fabrics/CXL/Endpoints/E1", true},
		{true, "/redfish/v1/Systems/S1", false},
	}
	for _, cse := range cases {
		f := Filter{Origins: []odata.ID{"/redfish/v1/Fabrics/CXL"}, Subordinate: cse.sub}
		rec := Record(redfish.EventAlert, "1", "m", cse.origin)
		if got := f.Matches(rec); got != cse.want {
			t.Errorf("Matches(sub=%v, origin=%s) = %v, want %v", cse.sub, cse.origin, got, cse.want)
		}
	}
}

func TestOriginFilterRequiresOrigin(t *testing.T) {
	f := Filter{Origins: []odata.ID{"/x"}}
	rec := Record(redfish.EventAlert, "1", "no origin", "")
	if f.Matches(rec) {
		t.Error("matched record with no origin")
	}
}

func TestRetrySucceedsAfterTransientFailure(t *testing.T) {
	b := NewBus(Config{RetryAttempts: 3, RetryInterval: time.Millisecond})
	defer b.Close()
	c := &collector{fail: 2}
	if _, err := b.Subscribe(c, Filter{}, ""); err != nil {
		t.Fatal(err)
	}
	b.Publish(Record(redfish.EventAlert, "1", "m", ""))
	waitFor(t, func() bool { return c.count() == 1 })
	if s := b.Stats(); s.Delivered != 1 || s.Failed != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRetryExhaustionCountsFailure(t *testing.T) {
	b := NewBus(Config{RetryAttempts: 2, RetryInterval: time.Millisecond})
	defer b.Close()
	c := &collector{fail: 100}
	if _, err := b.Subscribe(c, Filter{}, ""); err != nil {
		t.Fatal(err)
	}
	b.Publish(Record(redfish.EventAlert, "1", "m", ""))
	waitFor(t, func() bool { return b.Stats().Failed == 1 })
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := NewBus(Config{})
	defer b.Close()
	c := &collector{}
	sub, err := b.Subscribe(c, Filter{}, "")
	if err != nil {
		t.Fatal(err)
	}
	b.Publish(Record(redfish.EventAlert, "1", "m", ""))
	waitFor(t, func() bool { return c.count() == 1 })
	if err := b.Unsubscribe(sub.ID); err != nil {
		t.Fatal(err)
	}
	b.Publish(Record(redfish.EventAlert, "2", "m", ""))
	time.Sleep(20 * time.Millisecond)
	if c.count() != 1 {
		t.Errorf("delivered after unsubscribe: %d", c.count())
	}
	if err := b.Unsubscribe(sub.ID); err == nil {
		t.Error("double unsubscribe succeeded")
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	b := NewBus(Config{QueueDepth: 1, RetryAttempts: 1})
	defer b.Close()
	block := make(chan struct{})
	slow := SinkFunc(func(context.Context, redfish.Event) error {
		<-block
		return nil
	})
	if _, err := b.Subscribe(slow, Filter{}, ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b.Publish(Record(redfish.EventAlert, "x", "m", ""))
	}
	waitFor(t, func() bool { return b.Stats().Dropped >= 8 })
	close(block)
}

func TestSynchronousMode(t *testing.T) {
	b := NewBus(Config{Synchronous: true, RetryAttempts: 1})
	defer b.Close()
	c := &collector{}
	if _, err := b.Subscribe(c, Filter{}, ""); err != nil {
		t.Fatal(err)
	}
	b.Publish(Record(redfish.EventAlert, "1", "m", ""))
	// Synchronous: delivered before Publish returns.
	if c.count() != 1 {
		t.Errorf("count = %d immediately after publish", c.count())
	}
}

func TestHTTPSinkDeliver(t *testing.T) {
	var got atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			t.Errorf("method = %s", r.Method)
		}
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("content-type = %s", ct)
		}
		got.Add(1)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	sink := &HTTPSink{URL: srv.URL}
	err := sink.Deliver(context.Background(), redfish.Event{ID: "1"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Load() != 1 {
		t.Errorf("server saw %d posts", got.Load())
	}
}

func TestHTTPSinkNon2xxIsError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadGateway)
	}))
	defer srv.Close()
	sink := &HTTPSink{URL: srv.URL}
	if err := sink.Deliver(context.Background(), redfish.Event{}); err == nil {
		t.Error("expected error for 502")
	}
}

func TestCloseRejectsSubscribe(t *testing.T) {
	b := NewBus(Config{})
	b.Close()
	if _, err := b.Subscribe(SinkFunc(func(context.Context, redfish.Event) error { return nil }), Filter{}, ""); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v", err)
	}
	b.Close() // idempotent
}

func TestConcurrentPublish(t *testing.T) {
	b := NewBus(Config{QueueDepth: 4096})
	defer b.Close()
	c := &collector{}
	if _, err := b.Subscribe(c, Filter{}, ""); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const n = 50
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				b.Publish(Record(redfish.EventAlert, "e", "m", ""))
			}
		}()
	}
	wg.Wait()
	waitFor(t, func() bool { return c.count() == 4*n })
}

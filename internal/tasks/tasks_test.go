package tasks

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ofmf/internal/odata"
	"ofmf/internal/redfish"
)

const base = odata.ID("/redfish/v1/TaskService/Tasks")

func TestLifecycleComplete(t *testing.T) {
	svc := NewService(base)
	task := svc.Start("compose")
	if task.State() != redfish.TaskRunning {
		t.Fatalf("state = %s", task.State())
	}
	if err := task.Progress(50, "halfway"); err != nil {
		t.Fatal(err)
	}
	if err := task.Complete("done"); err != nil {
		t.Fatal(err)
	}
	snap := task.Snapshot()
	if snap.TaskState != redfish.TaskCompleted || snap.PercentComplete != 100 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.TaskStatus != odata.HealthOK {
		t.Errorf("TaskStatus = %s", snap.TaskStatus)
	}
	if snap.EndTime == "" {
		t.Error("missing EndTime")
	}
	if len(snap.Messages) != 2 {
		t.Errorf("messages = %v", snap.Messages)
	}
}

func TestLifecycleFail(t *testing.T) {
	svc := NewService(base)
	task := svc.Start("compose")
	if err := task.Fail("no capacity"); err != nil {
		t.Fatal(err)
	}
	snap := task.Snapshot()
	if snap.TaskState != redfish.TaskException || snap.TaskStatus != odata.HealthCritical {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestTerminalTransitionsRejected(t *testing.T) {
	svc := NewService(base)
	task := svc.Start("x")
	if err := task.Complete(""); err != nil {
		t.Fatal(err)
	}
	if err := task.Complete(""); !errors.Is(err, ErrFinished) {
		t.Errorf("second complete err = %v", err)
	}
	if err := task.Fail(""); !errors.Is(err, ErrFinished) {
		t.Errorf("fail after complete err = %v", err)
	}
	if err := task.Progress(10, ""); !errors.Is(err, ErrFinished) {
		t.Errorf("progress after complete err = %v", err)
	}
	if err := task.Cancel(); !errors.Is(err, ErrFinished) {
		t.Errorf("cancel after complete err = %v", err)
	}
}

func TestCancelSignalsWorker(t *testing.T) {
	svc := NewService(base)
	task := svc.Start("long")
	done := make(chan string, 1)
	go func() {
		select {
		case <-task.Cancelled():
			done <- "cancelled"
		case <-time.After(time.Second):
			done <- "timeout"
		}
	}()
	if err := task.Cancel(); err != nil {
		t.Fatal(err)
	}
	if got := <-done; got != "cancelled" {
		t.Errorf("worker saw %q", got)
	}
	if task.State() != redfish.TaskCancelled {
		t.Errorf("state = %s", task.State())
	}
}

func TestProgressClamped(t *testing.T) {
	svc := NewService(base)
	task := svc.Start("x")
	if err := task.Progress(150, ""); err != nil {
		t.Fatal(err)
	}
	if p := task.Snapshot().PercentComplete; p != 100 {
		t.Errorf("percent = %d", p)
	}
	if err := task.Progress(-4, ""); err != nil {
		t.Fatal(err)
	}
	if p := task.Snapshot().PercentComplete; p != 0 {
		t.Errorf("percent = %d", p)
	}
}

func TestWait(t *testing.T) {
	svc := NewService(base)
	task := svc.Start("x")
	go func() {
		time.Sleep(5 * time.Millisecond)
		_ = task.Complete("")
	}()
	state, err := task.Wait(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if state != redfish.TaskCompleted {
		t.Errorf("state = %s", state)
	}
}

func TestWaitTimeout(t *testing.T) {
	svc := NewService(base)
	task := svc.Start("x")
	if _, err := task.Wait(5 * time.Millisecond); err == nil {
		t.Error("expected timeout error")
	}
}

func TestMirrorAndNotifier(t *testing.T) {
	var mu sync.Mutex
	var mirrored []redfish.Task
	var notified []redfish.EventRecord
	svc := NewService(base,
		WithMirror(func(_ odata.ID, task redfish.Task) {
			mu.Lock()
			mirrored = append(mirrored, task)
			mu.Unlock()
		}),
		WithNotifier(func(rec redfish.EventRecord) {
			mu.Lock()
			notified = append(notified, rec)
			mu.Unlock()
		}),
	)
	task := svc.Start("compose")
	_ = task.Progress(10, "")
	_ = task.Complete("")
	mu.Lock()
	defer mu.Unlock()
	if len(mirrored) != 3 {
		t.Errorf("mirrored %d snapshots, want 3", len(mirrored))
	}
	if len(notified) != 3 {
		t.Errorf("notified %d records, want 3", len(notified))
	}
	last := mirrored[len(mirrored)-1]
	if last.TaskState != redfish.TaskCompleted {
		t.Errorf("final mirrored state = %s", last.TaskState)
	}
	if notified[0].OriginOfCondition == nil || notified[0].OriginOfCondition.ODataID != task.URI() {
		t.Errorf("notification origin = %+v", notified[0].OriginOfCondition)
	}
}

func TestGetAndList(t *testing.T) {
	svc := NewService(base)
	t1 := svc.Start("a")
	t2 := svc.Start("b")
	got, err := svc.Get(t1.ID())
	if err != nil || got != t1 {
		t.Errorf("Get = %v, %v", got, err)
	}
	if _, err := svc.Get("999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing get err = %v", err)
	}
	ids := svc.List()
	if len(ids) != 2 || ids[0] != t1.ID() || ids[1] != t2.ID() {
		t.Errorf("List = %v", ids)
	}
}

func TestDeterministicClock(t *testing.T) {
	fixed := time.Date(2023, 5, 15, 10, 0, 0, 0, time.UTC)
	svc := NewService(base, WithClock(func() time.Time { return fixed }))
	task := svc.Start("x")
	_ = task.Complete("")
	snap := task.Snapshot()
	if snap.StartTime != "2023-05-15T10:00:00Z" || snap.EndTime != "2023-05-15T10:00:00Z" {
		t.Errorf("times = %s / %s", snap.StartTime, snap.EndTime)
	}
}

func TestConcurrentTasks(t *testing.T) {
	svc := NewService(base)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			task := svc.Start("p")
			_ = task.Progress(50, "")
			_ = task.Complete("")
		}()
	}
	wg.Wait()
	if got := len(svc.List()); got != 32 {
		t.Errorf("tasks = %d", got)
	}
}

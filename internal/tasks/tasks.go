// Package tasks implements the Redfish TaskService used by the OFMF for
// long-running operations such as composition requests and fabric
// reconfiguration. A task transitions New → Running → Completed/Exception/
// Cancelled; every transition is mirrored into the resource store so
// clients can poll the task monitor URI, and optionally published on the
// event bus.
package tasks

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ofmf/internal/odata"
	"ofmf/internal/redfish"
)

// Sentinel errors.
var (
	ErrNotFound  = errors.New("tasks: task not found")
	ErrFinished  = errors.New("tasks: task already finished")
	ErrCancelled = errors.New("tasks: task cancelled")
)

// Notifier receives task state-change records; the service wires this to
// the event bus.
type Notifier func(rec redfish.EventRecord)

// Mirror persists task resources; the service wires this to the store.
type Mirror func(id odata.ID, task redfish.Task)

// Service manages asynchronous tasks.
type Service struct {
	base odata.ID // the task collection URI

	mu     sync.Mutex
	nextID int
	tasks  map[string]*Task

	notify Notifier
	mirror Mirror
	now    func() time.Time
}

// Task is one tracked operation.
type Task struct {
	svc *Service

	id        string
	uri       odata.ID
	name      string
	state     string
	percent   int
	start     time.Time
	end       time.Time
	messages  []odata.Message
	cancelled chan struct{}
	done      chan struct{}
}

// Option configures the service.
type Option func(*Service)

// WithNotifier wires task state changes to a notifier.
func WithNotifier(n Notifier) Option { return func(s *Service) { s.notify = n } }

// WithMirror wires task resources to a persistence function.
func WithMirror(m Mirror) Option { return func(s *Service) { s.mirror = m } }

// WithClock overrides the time source (tests).
func WithClock(now func() time.Time) Option { return func(s *Service) { s.now = now } }

// NewService creates a task service whose tasks live under base (e.g.
// /redfish/v1/TaskService/Tasks).
func NewService(base odata.ID, opts ...Option) *Service {
	s := &Service{base: base, tasks: make(map[string]*Task), now: time.Now}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Start creates a task in the Running state and returns it.
func (s *Service) Start(name string) *Task {
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("%d", s.nextID)
	t := &Task{
		svc:       s,
		id:        id,
		uri:       s.base.Append(id),
		name:      name,
		state:     redfish.TaskRunning,
		start:     s.now(),
		cancelled: make(chan struct{}),
		done:      make(chan struct{}),
	}
	s.tasks[id] = t
	s.mu.Unlock()
	s.publish(t, "TaskStarted")
	return t
}

// Get returns the task with the given id.
func (s *Service) Get(id string) (*Task, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return t, nil
}

// List returns all task ids in creation order.
func (s *Service) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.tasks))
	for i := 1; i <= s.nextID; i++ {
		id := fmt.Sprintf("%d", i)
		if _, ok := s.tasks[id]; ok {
			ids = append(ids, id)
		}
	}
	return ids
}

func (s *Service) publish(t *Task, msgID string) {
	snap := t.Snapshot()
	if s.mirror != nil {
		s.mirror(t.uri, snap)
	}
	if s.notify != nil {
		ref := odata.NewRef(t.uri)
		s.notify(redfish.EventRecord{
			EventType:         redfish.EventStatusChange,
			EventID:           t.id,
			EventTimestamp:    redfish.Timestamp(s.now()),
			MessageID:         "TaskEvent.1.0." + msgID,
			Message:           fmt.Sprintf("task %s: %s", t.id, snap.TaskState),
			OriginOfCondition: &ref,
		})
	}
}

// ID returns the task's identifier.
func (t *Task) ID() string { return t.id }

// URI returns the task monitor URI.
func (t *Task) URI() odata.ID { return t.uri }

// Done returns a channel closed when the task reaches a terminal state.
func (t *Task) Done() <-chan struct{} { return t.done }

// Cancelled returns a channel closed when cancellation is requested.
func (t *Task) Cancelled() <-chan struct{} { return t.cancelled }

// Progress updates the completion percentage and appends an optional
// message. It fails once the task is terminal.
func (t *Task) Progress(percent int, message string) error {
	t.svc.mu.Lock()
	if terminal(t.state) {
		t.svc.mu.Unlock()
		return ErrFinished
	}
	if percent < 0 {
		percent = 0
	}
	if percent > 100 {
		percent = 100
	}
	t.percent = percent
	if message != "" {
		t.messages = append(t.messages, odata.Message{MessageID: "TaskEvent.1.0.Progress", Message: message})
	}
	t.svc.mu.Unlock()
	t.svc.publish(t, "TaskProgressChanged")
	return nil
}

// Complete marks the task successful.
func (t *Task) Complete(message string) error {
	return t.finish(redfish.TaskCompleted, "TaskCompletedOK", message)
}

// Fail marks the task failed.
func (t *Task) Fail(message string) error {
	return t.finish(redfish.TaskException, "TaskAborted", message)
}

// Cancel requests cancellation and marks the task cancelled.
func (t *Task) Cancel() error {
	t.svc.mu.Lock()
	if terminal(t.state) {
		t.svc.mu.Unlock()
		return ErrFinished
	}
	close(t.cancelled)
	t.svc.mu.Unlock()
	return t.finish(redfish.TaskCancelled, "TaskCancelled", "cancelled by client")
}

func (t *Task) finish(state, msgID, message string) error {
	t.svc.mu.Lock()
	if terminal(t.state) {
		t.svc.mu.Unlock()
		return ErrFinished
	}
	t.state = state
	t.end = t.svc.now()
	if state == redfish.TaskCompleted {
		t.percent = 100
	}
	if message != "" {
		t.messages = append(t.messages, odata.Message{MessageID: "TaskEvent.1.0." + msgID, Message: message})
	}
	t.svc.mu.Unlock()
	// Mirror and notify before signalling completion, so a waiter that
	// wakes on Done always observes the terminal resource in the tree.
	t.svc.publish(t, msgID)
	close(t.done)
	return nil
}

func terminal(state string) bool {
	switch state {
	case redfish.TaskCompleted, redfish.TaskException, redfish.TaskCancelled:
		return true
	}
	return false
}

// State returns the current task state.
func (t *Task) State() string {
	t.svc.mu.Lock()
	defer t.svc.mu.Unlock()
	return t.state
}

// Snapshot renders the task as its Redfish resource.
func (t *Task) Snapshot() redfish.Task {
	t.svc.mu.Lock()
	defer t.svc.mu.Unlock()
	task := redfish.Task{
		Resource:        odata.NewResource(t.uri, redfish.TypeTask, t.name),
		TaskState:       t.state,
		PercentComplete: t.percent,
		StartTime:       redfish.Timestamp(t.start),
		TaskMonitor:     string(t.uri),
		Messages:        append([]odata.Message(nil), t.messages...),
	}
	if terminal(t.state) {
		task.EndTime = redfish.Timestamp(t.end)
		if t.state == redfish.TaskCompleted {
			task.TaskStatus = odata.HealthOK
		} else {
			task.TaskStatus = odata.HealthCritical
		}
	}
	return task
}

// Wait blocks until the task is terminal or the timeout elapses, and
// returns the final state.
func (t *Task) Wait(timeout time.Duration) (string, error) {
	select {
	case <-t.done:
		return t.State(), nil
	case <-time.After(timeout):
		return t.State(), fmt.Errorf("tasks: wait on %s timed out after %v", t.id, timeout)
	}
}

package composer

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"ofmf/internal/service"
)

// Handler returns the Composability Layer's REST facade — the interface
// the paper places between clients (workload managers, runtimes,
// administrators) and the OFMF:
//
//	POST   /composer/v1/Compose           — realize a Request
//	GET    /composer/v1/Compositions      — list live compositions
//	GET    /composer/v1/Compositions/{id} — inspect one
//	DELETE /composer/v1/Compositions/{id} — decompose
//	POST   /composer/v1/Compositions/{id}/Actions/HotAddMemory — grow memory
//	GET    /composer/v1/Stats             — utilization counters
func (c *Composer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/composer/v1/Compose", c.handleCompose)
	mux.HandleFunc("/composer/v1/ComposeAsync", c.handleComposeAsync)
	mux.HandleFunc("/composer/v1/Compositions", c.handleList)
	mux.HandleFunc("/composer/v1/Compositions/", c.handleComposition)
	mux.HandleFunc("/composer/v1/Stats", c.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// httpError emits the same Redfish extended-error envelope the OFMF's
// Redfish surface uses, so composer clients parse one error shape.
func httpError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, service.RedfishError(status, code, message))
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	code := "Base.1.0.InternalError"
	switch {
	case errors.Is(err, ErrUnknownComp), errors.Is(err, ErrUnknownNode):
		status, code = http.StatusNotFound, "Base.1.0.ResourceMissingAtURI"
	case errors.Is(err, ErrNoCapacity), errors.Is(err, ErrNoPool):
		status, code = http.StatusConflict, "OFMF.1.0.InsufficientCapacity"
	case errors.Is(err, ErrInvalidRequest):
		status, code = http.StatusBadRequest, "Base.1.0.PropertyValueError"
	}
	httpError(w, status, code, err.Error())
}

func (c *Composer) handleCompose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "POST only")
		return
	}
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "Base.1.0.MalformedJSON", err.Error())
		return
	}
	comp, err := c.ComposeCtx(r.Context(), req)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/composer/v1/Compositions/"+comp.ID)
	writeJSON(w, http.StatusCreated, comp)
}

// handleComposeAsync accepts the request and returns 202 with the Redfish
// task monitor in Location, per the Redfish asynchronous-operation
// pattern.
func (c *Composer) handleComposeAsync(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "POST only")
		return
	}
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "Base.1.0.MalformedJSON", err.Error())
		return
	}
	task := c.ComposeAsync(req)
	w.Header().Set("Location", string(task.URI()))
	writeJSON(w, http.StatusAccepted, map[string]string{"TaskMonitor": string(task.URI())})
}

func (c *Composer) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "GET only")
		return
	}
	writeJSON(w, http.StatusOK, c.Compositions())
}

func (c *Composer) handleComposition(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/composer/v1/Compositions/")
	parts := strings.Split(rest, "/")
	id := parts[0]
	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		comp, err := c.Get(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, comp)
	case len(parts) == 1 && r.Method == http.MethodDelete:
		if err := c.DecomposeCtx(r.Context(), id); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case len(parts) == 3 && parts[1] == "Actions" && parts[2] == "HotAddMemory" && r.Method == http.MethodPost:
		var body struct {
			SizeMiB int64 `json:"SizeMiB"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.SizeMiB <= 0 {
			httpError(w, http.StatusBadRequest, "Base.1.0.PropertyValueError", "SizeMiB must be positive")
			return
		}
		if err := c.HotAddMemoryCtx(r.Context(), id, body.SizeMiB); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		httpError(w, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "unsupported")
	}
}

func (c *Composer) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "GET only")
		return
	}
	writeJSON(w, http.StatusOK, c.Stats())
}

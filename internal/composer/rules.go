package composer

import (
	"context"
	"strings"
	"sync"

	"ofmf/internal/events"
	"ofmf/internal/redfish"
)

// Rule reacts to OFMF events — the paper's "dynamic provisioning of
// resources to maintain running client computations".
type Rule struct {
	// Name labels the rule in Fired() accounting.
	Name string
	// Matches selects the events the rule reacts to.
	Matches func(rec redfish.EventRecord) bool
	// Action runs for each matching event.
	Action func(rec redfish.EventRecord)
}

// RuleEngine subscribes to the OFMF event bus and dispatches rules.
type RuleEngine struct {
	mu    sync.Mutex
	rules []Rule
	fired map[string]int
}

// NewRuleEngine creates an empty engine.
func NewRuleEngine() *RuleEngine {
	return &RuleEngine{fired: make(map[string]int)}
}

// Add registers a rule.
func (e *RuleEngine) Add(r Rule) {
	e.mu.Lock()
	e.rules = append(e.rules, r)
	e.mu.Unlock()
}

// Fired reports how many times the named rule has triggered.
func (e *RuleEngine) Fired(name string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fired[name]
}

// Bind subscribes the engine to the bus; every published event is matched
// against every rule.
func (e *RuleEngine) Bind(bus *events.Bus) error {
	_, err := bus.Subscribe(events.SinkFunc(func(_ context.Context, ev redfish.Event) error {
		for _, rec := range ev.Events {
			e.dispatch(rec)
		}
		return nil
	}), events.Filter{}, "composability-rules")
	return err
}

// Dispatch runs the engine on one record directly (used by in-process
// publishers and tests).
func (e *RuleEngine) Dispatch(rec redfish.EventRecord) { e.dispatch(rec) }

func (e *RuleEngine) dispatch(rec redfish.EventRecord) {
	e.mu.Lock()
	rules := append([]Rule(nil), e.rules...)
	e.mu.Unlock()
	for _, r := range rules {
		if r.Matches(rec) {
			e.mu.Lock()
			e.fired[r.Name]++
			e.mu.Unlock()
			r.Action(rec)
		}
	}
}

// MessageOutOfMemory is the alert message id the OOM mitigation rule
// listens for; workload managers publish it when a composition nears
// memory exhaustion.
const MessageOutOfMemory = "OFMF.1.0.OutOfMemory"

// OOMRule hot-adds stepMiB of fabric memory to the composition named in
// the event's MessageArgs[0] whenever an out-of-memory alert arrives.
func OOMRule(c *Composer, stepMiB int64) Rule {
	return Rule{
		Name: "oom-hot-add",
		Matches: func(rec redfish.EventRecord) bool {
			return rec.MessageID == MessageOutOfMemory && len(rec.MessageArgs) > 0
		},
		Action: func(rec redfish.EventRecord) {
			_ = c.HotAddMemory(rec.MessageArgs[0], stepMiB)
		},
	}
}

// LinkFailoverRule invokes onFailure for every fabric LinkDown alert — the
// hook point for network fail-over orchestration above what agents already
// re-route themselves.
func LinkFailoverRule(onFailure func(rec redfish.EventRecord)) Rule {
	return Rule{
		Name: "link-failover",
		Matches: func(rec redfish.EventRecord) bool {
			return strings.HasSuffix(rec.MessageID, "FabricLinkDown")
		},
		Action: onFailure,
	}
}

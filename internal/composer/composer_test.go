package composer_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ofmf/internal/composer"
	"ofmf/internal/core"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
)

func newFramework(t *testing.T, cfg core.Config) *core.Framework {
	t.Helper()
	f, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

func TestComposeFullSystem(t *testing.T) {
	f := newFramework(t, core.Config{Nodes: 2})
	comp, err := f.Composer.Compose(composer.Request{
		Name:            "hpc-job-1",
		Cores:           16,
		FabricMemoryMiB: 4096,
		StorageBytes:    1 << 30,
		GPUSlices:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Node == "" || comp.SystemURI == "" {
		t.Fatalf("composition = %+v", comp)
	}
	if len(comp.Resources) != 3 {
		t.Fatalf("resources = %v", comp.Resources)
	}

	// Hardware state reflects the composition.
	if f.CXL.FreeMiB() != 4*256*1024-4096 {
		t.Errorf("cxl free = %d", f.CXL.FreeMiB())
	}
	if f.GPUs.FreeSlices() != 8*7-2 {
		t.Errorf("gpu free = %d", f.GPUs.FreeSlices())
	}
	pools := f.NVMe.Pools()
	if pools[0].AllocatedBytes() != 1<<30 {
		t.Errorf("nvme allocated = %d", pools[0].AllocatedBytes())
	}

	// The composed system is published with resource links.
	var sys redfish.ComputerSystem
	if err := f.Service.Store().GetAs(comp.SystemURI, &sys); err != nil {
		t.Fatal(err)
	}
	if sys.SystemType != redfish.SystemTypeComposed {
		t.Errorf("system type = %s", sys.SystemType)
	}
	if len(sys.Links.ResourceBlocks) != 3 {
		t.Errorf("resource links = %v", sys.Links.ResourceBlocks)
	}

	// Decompose returns every resource to the pool.
	if err := f.Composer.Decompose(comp.ID); err != nil {
		t.Fatal(err)
	}
	if f.CXL.FreeMiB() != 4*256*1024 {
		t.Errorf("cxl free after decompose = %d", f.CXL.FreeMiB())
	}
	if f.GPUs.FreeSlices() != 8*7 {
		t.Errorf("gpu free after decompose = %d", f.GPUs.FreeSlices())
	}
	if f.NVMe.Pools()[0].AllocatedBytes() != 0 {
		t.Errorf("nvme allocated after decompose = %d", f.NVMe.Pools()[0].AllocatedBytes())
	}
	if f.Service.Store().Exists(comp.SystemURI) {
		t.Error("composed system survived decompose")
	}
	stats := f.Composer.Stats()
	if stats.UsedCores != 0 || stats.Compositions != 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestCompositionZonesFabric(t *testing.T) {
	f := newFramework(t, core.Config{Nodes: 1})
	comp, err := f.Composer.Compose(composer.Request{Cores: 4, FabricMemoryMiB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	zones, err := f.Service.Store().Members(f.CXLAgent.FabricID().Append("Zones"))
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 1 {
		t.Fatalf("zones = %v", zones)
	}
	var zone redfish.Zone
	if err := f.Service.Store().GetAs(zones[0], &zone); err != nil {
		t.Fatal(err)
	}
	if zone.ZoneType != redfish.ZoneTypeZoneOfEndpoints || len(zone.Links.Endpoints) != 1 {
		t.Errorf("zone = %+v", zone)
	}
	if err := f.Composer.Decompose(comp.ID); err != nil {
		t.Fatal(err)
	}
	zones, _ = f.Service.Store().Members(f.CXLAgent.FabricID().Append("Zones"))
	if len(zones) != 0 {
		t.Errorf("zones after decompose = %v", zones)
	}
}

func TestResourceBlockPublished(t *testing.T) {
	f := newFramework(t, core.Config{Nodes: 1})
	comp, err := f.Composer.Compose(composer.Request{Cores: 4, FabricMemoryMiB: 1024, GPUSlices: 1})
	if err != nil {
		t.Fatal(err)
	}
	if comp.BlockURI.IsZero() {
		t.Fatal("no resource block URI")
	}
	var block redfish.ResourceBlock
	if err := f.Service.Store().GetAs(comp.BlockURI, &block); err != nil {
		t.Fatal(err)
	}
	if block.CompositionStatus.CompositionState != redfish.CompositionComposed {
		t.Errorf("state = %s", block.CompositionStatus.CompositionState)
	}
	if len(block.Memory) != 1 || len(block.Processors) != 1 || len(block.Storage) != 0 {
		t.Errorf("block members = mem %d / gpu %d / sto %d", len(block.Memory), len(block.Processors), len(block.Storage))
	}
	wantTypes := map[string]bool{redfish.BlockCompute: true, redfish.BlockMemory: true, redfish.BlockProcessor: true}
	for _, bt := range block.ResourceBlockType {
		delete(wantTypes, bt)
	}
	if len(wantTypes) != 0 {
		t.Errorf("missing block types: %v (got %v)", wantTypes, block.ResourceBlockType)
	}
	if len(block.Links.ComputerSystems) != 1 || block.Links.ComputerSystems[0].ODataID != comp.SystemURI {
		t.Errorf("links = %+v", block.Links)
	}

	// Hot-add refreshes the block's member list.
	if err := f.Composer.HotAddMemory(comp.ID, 512); err != nil {
		t.Fatal(err)
	}
	if err := f.Service.Store().GetAs(comp.BlockURI, &block); err != nil {
		t.Fatal(err)
	}
	if len(block.Memory) != 2 {
		t.Errorf("memory after hot-add = %d", len(block.Memory))
	}

	// Decompose removes the block.
	if err := f.Composer.Decompose(comp.ID); err != nil {
		t.Fatal(err)
	}
	if f.Service.Store().Exists(comp.BlockURI) {
		t.Error("block survived decompose")
	}
	members, err := f.Service.Store().Members(service.ResourceBlocksURI)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 0 {
		t.Errorf("blocks remaining: %v", members)
	}
}

func TestComposeValidation(t *testing.T) {
	f := newFramework(t, core.Config{Nodes: 1})
	if _, err := f.Composer.Compose(composer.Request{Cores: 0}); !errors.Is(err, composer.ErrInvalidRequest) {
		t.Errorf("err = %v", err)
	}
	if _, err := f.Composer.Compose(composer.Request{Cores: 1, Node: "ghost"}); !errors.Is(err, composer.ErrUnknownNode) {
		t.Errorf("err = %v", err)
	}
}

func TestComposeNoCores(t *testing.T) {
	f := newFramework(t, core.Config{Nodes: 1, CoresPerNode: 8})
	if _, err := f.Composer.Compose(composer.Request{Cores: 9}); !errors.Is(err, composer.ErrNoCapacity) {
		t.Errorf("err = %v", err)
	}
	// Saturate then fail.
	if _, err := f.Composer.Compose(composer.Request{Cores: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Composer.Compose(composer.Request{Cores: 1}); !errors.Is(err, composer.ErrNoCapacity) {
		t.Errorf("err = %v", err)
	}
}

func TestComposeRollbackOnPoolExhaustion(t *testing.T) {
	// Memory succeeds, storage fails (ErrNoPool) → memory must be rolled back.
	f := newFramework(t, core.Config{Nodes: 1, NVMePoolBytes: 1024})
	before := f.CXL.FreeMiB()
	_, err := f.Composer.Compose(composer.Request{
		Cores:           4,
		FabricMemoryMiB: 1024,
		StorageBytes:    1 << 40, // larger than the pool
	})
	if !errors.Is(err, composer.ErrNoPool) {
		t.Fatalf("err = %v", err)
	}
	if f.CXL.FreeMiB() != before {
		t.Errorf("memory leaked: free = %d, want %d", f.CXL.FreeMiB(), before)
	}
	stats := f.Composer.Stats()
	if stats.UsedCores != 0 {
		t.Errorf("cores leaked: %+v", stats)
	}
	// Tree has no leftover chunk/connection resources.
	members, err := f.Service.Store().Members(f.CXLAgent.FabricID().Append("Connections"))
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 0 {
		t.Errorf("leftover connections: %v", members)
	}
}

func TestNodePinning(t *testing.T) {
	f := newFramework(t, core.Config{Nodes: 3})
	comp, err := f.Composer.Compose(composer.Request{Cores: 4, Node: core.NodeName(2)})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Node != core.NodeName(2) {
		t.Errorf("node = %s", comp.Node)
	}
}

func TestHotAddMemory(t *testing.T) {
	f := newFramework(t, core.Config{Nodes: 1})
	comp, err := f.Composer.Compose(composer.Request{Cores: 4, FabricMemoryMiB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	before := f.CXL.FreeMiB()
	if err := f.Composer.HotAddMemory(comp.ID, 2048); err != nil {
		t.Fatal(err)
	}
	if f.CXL.FreeMiB() != before-2048 {
		t.Errorf("free = %d", f.CXL.FreeMiB())
	}
	got, err := f.Composer.Get(comp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Resources) != 2 {
		t.Errorf("resources = %v", got.Resources)
	}
	var sys redfish.ComputerSystem
	if err := f.Service.Store().GetAs(comp.SystemURI, &sys); err != nil {
		t.Fatal(err)
	}
	if len(sys.Links.ResourceBlocks) != 2 {
		t.Errorf("system links = %v", sys.Links.ResourceBlocks)
	}
	if err := f.Composer.HotAddMemory("ghost", 1); !errors.Is(err, composer.ErrUnknownComp) {
		t.Errorf("err = %v", err)
	}
}

func TestOOMRuleHotAdds(t *testing.T) {
	f := newFramework(t, core.Config{Nodes: 1, OOMHotAddMiB: 4096})
	comp, err := f.Composer.Compose(composer.Request{Cores: 4, FabricMemoryMiB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	before := f.CXL.FreeMiB()
	// A workload manager notices memory pressure and raises the alert.
	f.Rules.Dispatch(redfish.EventRecord{
		EventType:   redfish.EventAlert,
		EventID:     "oom-1",
		Severity:    "Critical",
		MessageID:   composer.MessageOutOfMemory,
		MessageArgs: []string{comp.ID},
	})
	if f.CXL.FreeMiB() != before-4096 {
		t.Errorf("free = %d, want %d", f.CXL.FreeMiB(), before-4096)
	}
	if f.Rules.Fired("oom-hot-add") != 1 {
		t.Errorf("rule fired %d times", f.Rules.Fired("oom-hot-add"))
	}
}

func TestPolicies(t *testing.T) {
	nodes := []composer.NodeState{
		{Name: "a", Cores: 16, UsedCores: 12}, // 4 free
		{Name: "b", Cores: 16, UsedCores: 4},  // 12 free
		{Name: "c", Cores: 16, UsedCores: 10}, // 6 free
	}
	req := composer.Request{Cores: 4}

	if got, err := (composer.FirstFit{}).SelectNode(nodes, req); err != nil || got != "a" {
		t.Errorf("FirstFit = %q, %v", got, err)
	}
	if got, err := (composer.BestFit{}).SelectNode(nodes, req); err != nil || got != "a" {
		t.Errorf("BestFit = %q, %v", got, err)
	}
	if got, err := (composer.WorstFit{}).SelectNode(nodes, req); err != nil || got != "b" {
		t.Errorf("WorstFit = %q, %v", got, err)
	}
	ta := composer.TopologyAware{Distance: func(node string, _ composer.Request) int {
		return map[string]int{"a": 3, "b": 2, "c": 1}[node]
	}}
	if got, err := ta.SelectNode(nodes, req); err != nil || got != "c" {
		t.Errorf("TopologyAware = %q, %v", got, err)
	}

	// Exhaustion paths.
	big := composer.Request{Cores: 100}
	for _, p := range []composer.Policy{composer.FirstFit{}, composer.BestFit{}, composer.WorstFit{}, ta} {
		if _, err := p.SelectNode(nodes, big); !errors.Is(err, composer.ErrNoCapacity) {
			t.Errorf("%T err = %v", p, err)
		}
	}
}

func TestComposerHTTPFacade(t *testing.T) {
	f := newFramework(t, core.Config{Nodes: 2})
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	// Compose via REST.
	body, _ := json.Marshal(composer.Request{Cores: 8, FabricMemoryMiB: 2048})
	resp, err := http.Post(srv.URL+"/composer/v1/Compose", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("compose status = %d", resp.StatusCode)
	}
	var comp composer.Composition
	if err := json.NewDecoder(resp.Body).Decode(&comp); err != nil {
		t.Fatal(err)
	}

	// The composed system is visible through the Redfish side of the mux.
	resp2, err := http.Get(srv.URL + string(comp.SystemURI))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("system GET = %d", resp2.StatusCode)
	}

	// List, stats, hot-add, decompose.
	resp3, err := http.Get(srv.URL + "/composer/v1/Compositions")
	if err != nil {
		t.Fatal(err)
	}
	var list []composer.Composition
	if err := json.NewDecoder(resp3.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if len(list) != 1 {
		t.Errorf("list = %v", list)
	}

	hot, _ := json.Marshal(map[string]int64{"SizeMiB": 1024})
	resp4, err := http.Post(srv.URL+"/composer/v1/Compositions/"+comp.ID+"/Actions/HotAddMemory", "application/json", bytes.NewReader(hot))
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusNoContent {
		t.Errorf("hot-add status = %d", resp4.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/composer/v1/Compositions/"+comp.ID, nil)
	resp5, err := (&http.Client{}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp5.Body.Close()
	if resp5.StatusCode != http.StatusNoContent {
		t.Errorf("decompose status = %d", resp5.StatusCode)
	}
	if f.CXL.FreeMiB() != 4*256*1024 {
		t.Errorf("cxl free = %d", f.CXL.FreeMiB())
	}

	// Unknown composition paths.
	resp6, err := http.Get(srv.URL + "/composer/v1/Compositions/ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp6.Body.Close()
	if resp6.StatusCode != http.StatusNotFound {
		t.Errorf("unknown GET = %d", resp6.StatusCode)
	}
}

func TestMultipleCompositionsShareNode(t *testing.T) {
	f := newFramework(t, core.Config{Nodes: 1, CoresPerNode: 32})
	var comps []composer.Composition
	for i := 0; i < 4; i++ {
		comp, err := f.Composer.Compose(composer.Request{Cores: 8})
		if err != nil {
			t.Fatal(err)
		}
		comps = append(comps, comp)
	}
	stats := f.Composer.Stats()
	if stats.UsedCores != 32 || stats.Compositions != 4 {
		t.Errorf("stats = %+v", stats)
	}
	for _, comp := range comps {
		if err := f.Composer.Decompose(comp.ID); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.Composer.Stats().UsedCores; got != 0 {
		t.Errorf("used cores = %d", got)
	}
}

func TestSharedMemoryMultiHead(t *testing.T) {
	// Two compositions on different nodes can share one multi-headed chunk
	// only through explicit hot-add paths; here we verify two separate
	// compositions each get their own chunk and the appliance serves both.
	f := newFramework(t, core.Config{Nodes: 2})
	c1, err := f.Composer.Compose(composer.Request{Cores: 4, FabricMemoryMiB: 1024, Node: core.NodeName(0)})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := f.Composer.Compose(composer.Request{Cores: 4, FabricMemoryMiB: 1024, Node: core.NodeName(1)})
	if err != nil {
		t.Fatal(err)
	}
	if c1.Node == c2.Node {
		t.Errorf("both compositions on %s", c1.Node)
	}
	chunks := f.CXL.Chunks()
	if len(chunks) != 2 {
		t.Errorf("chunks = %d", len(chunks))
	}
}

func TestComposeAsync(t *testing.T) {
	f := newFramework(t, core.Config{Nodes: 2})
	task := f.Composer.ComposeAsync(composer.Request{Name: "async-sys", Cores: 8, FabricMemoryMiB: 1024})
	state, err := task.Wait(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if state != redfish.TaskCompleted {
		t.Fatalf("state = %s: %+v", state, task.Snapshot())
	}
	// The task resource is browsable with the outcome message.
	var rt redfish.Task
	if err := f.Service.Store().GetAs(task.URI(), &rt); err != nil {
		t.Fatal(err)
	}
	if rt.PercentComplete != 100 {
		t.Errorf("percent = %d", rt.PercentComplete)
	}
	if len(f.Composer.Compositions()) != 1 {
		t.Errorf("compositions = %d", len(f.Composer.Compositions()))
	}

	// A failing request produces an Exception task, nothing leaked.
	task = f.Composer.ComposeAsync(composer.Request{Cores: 10000})
	state, err = task.Wait(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if state != redfish.TaskException {
		t.Errorf("state = %s", state)
	}
	if len(f.Composer.Compositions()) != 1 {
		t.Errorf("compositions after failure = %d", len(f.Composer.Compositions()))
	}
}

func TestComposeAsyncHTTP(t *testing.T) {
	f := newFramework(t, core.Config{Nodes: 1})
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	body, _ := json.Marshal(composer.Request{Cores: 4})
	resp, err := http.Post(srv.URL+"/composer/v1/ComposeAsync", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	monitor := resp.Header.Get("Location")
	if monitor == "" {
		t.Fatal("no task monitor")
	}
	// Poll the task monitor over the Redfish side until terminal.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r2, err := http.Get(srv.URL + monitor)
		if err != nil {
			t.Fatal(err)
		}
		var task redfish.Task
		err = json.NewDecoder(r2.Body).Decode(&task)
		r2.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if task.TaskState == redfish.TaskCompleted {
			break
		}
		if task.TaskState == redfish.TaskException {
			t.Fatalf("task failed: %+v", task.Messages)
		}
		if time.Now().After(deadline) {
			t.Fatalf("task stuck in %s", task.TaskState)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRedfishNativeComposition(t *testing.T) {
	f := newFramework(t, core.Config{Nodes: 2})
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	// POST a ComputerSystem-shaped composition request to the Systems
	// collection — the DMTF specific-composition pattern.
	body, _ := json.Marshal(map[string]any{
		"Name": "redfish-native",
		"Oem": map[string]any{"OFMF": map[string]any{
			"Cores":           8,
			"FabricMemoryMiB": 2048,
			"GPUSlices":       1,
		}},
	})
	resp, err := http.Post(srv.URL+string(service.SystemsURI), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var sys redfish.ComputerSystem
	if err := json.NewDecoder(resp.Body).Decode(&sys); err != nil {
		t.Fatal(err)
	}
	if sys.SystemType != redfish.SystemTypeComposed || sys.Name != "redfish-native" {
		t.Errorf("system = %+v", sys)
	}
	if len(sys.Links.ResourceBlocks) != 2 {
		t.Errorf("links = %v", sys.Links.ResourceBlocks)
	}
	if f.CXL.FreeMiB() != 4*256*1024-2048 {
		t.Errorf("cxl free = %d", f.CXL.FreeMiB())
	}

	// DELETE the composed system decomposes it.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+string(sys.ODataID), nil)
	resp2, err := (&http.Client{}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d", resp2.StatusCode)
	}
	if f.CXL.FreeMiB() != 4*256*1024 {
		t.Errorf("cxl free after delete = %d", f.CXL.FreeMiB())
	}
	if got := len(f.Composer.Compositions()); got != 0 {
		t.Errorf("compositions = %d", got)
	}

	// Unsatisfiable request → 409, nothing leaked.
	body, _ = json.Marshal(map[string]any{"Cores": 10000})
	resp3, err := http.Post(srv.URL+string(service.SystemsURI), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusConflict {
		t.Errorf("unsatisfiable = %d", resp3.StatusCode)
	}

	// DELETE of a physical system is not decomposition; with DirectWrites
	// (testbed) it is a plain store delete, so only composed systems route
	// through the composer. Verify the physical node survives a decompose
	// attempt through the composer path by checking it is still Physical.
	var phys redfish.ComputerSystem
	if err := f.Service.Store().GetAs(service.SystemsURI.Append(core.NodeName(0)), &phys); err != nil {
		t.Fatal(err)
	}
	if phys.SystemType != redfish.SystemTypePhysical {
		t.Errorf("physical node mutated: %+v", phys)
	}
}

func TestConcurrentComposeDecompose(t *testing.T) {
	f := newFramework(t, core.Config{Nodes: 8, CoresPerNode: 64})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				comp, err := f.Composer.Compose(composer.Request{
					Cores:           4,
					FabricMemoryMiB: 512,
					GPUSlices:       1,
				})
				if err != nil {
					errs <- err
					return
				}
				if err := f.Composer.Decompose(comp.ID); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	stats := f.Composer.Stats()
	if stats.UsedCores != 0 || stats.Compositions != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if f.CXL.FreeMiB() != 4*256*1024 {
		t.Errorf("cxl free = %d", f.CXL.FreeMiB())
	}
	if f.GPUs.FreeSlices() != 56 {
		t.Errorf("gpu free = %d", f.GPUs.FreeSlices())
	}
}

func TestArchitectureEndToEnd(t *testing.T) {
	// Fig 2 reproduction: client → Composability Layer → OFMF → Agent →
	// emulated hardware, and events flowing back up.
	f := newFramework(t, core.Config{Nodes: 2})
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	// 1. Client asks the Composability Layer for a system.
	body, _ := json.Marshal(composer.Request{Cores: 8, FabricMemoryMiB: 8192, StorageBytes: 1 << 30, GPUSlices: 1})
	resp, err := http.Post(srv.URL+"/composer/v1/Compose", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var comp composer.Composition
	if err := json.NewDecoder(resp.Body).Decode(&comp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// 2. The OFMF tree shows the composed system under /redfish/v1/Systems.
	resp, err = http.Get(srv.URL + "/redfish/v1/Systems")
	if err != nil {
		t.Fatal(err)
	}
	var coll struct {
		Count int `json:"Members@odata.count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&coll); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if coll.Count != 3 { // 2 physical + 1 composed
		t.Errorf("systems = %d", coll.Count)
	}

	// 3. Hardware (rightmost column) holds real allocations.
	if f.CXL.FreeMiB() == 4*256*1024 {
		t.Error("no memory carved")
	}
	// 4. Telemetry reports the utilization through the OFMF tree.
	report, err := f.Telem.Generate("pool-utilization")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.MetricValues) != 4 {
		t.Errorf("metric values = %v", report.MetricValues)
	}
	resp, err = http.Get(srv.URL + string(service.TelemetryServiceURI) + "/MetricReports/pool-utilization")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("report GET = %d", resp.StatusCode)
	}
}

package composer

import (
	"fmt"
	"math"
)

// Policy selects the compute node for a composition request. Nodes arrive
// sorted by name; implementations must not mutate the slice.
type Policy interface {
	SelectNode(nodes []NodeState, req Request) (string, error)
}

// FirstFit picks the first node (by name) with enough free cores. It is
// the cheapest policy and tends to pack the name-ordered front of the
// cluster.
type FirstFit struct{}

// SelectNode implements Policy.
func (FirstFit) SelectNode(nodes []NodeState, req Request) (string, error) {
	for _, n := range nodes {
		if n.FreeCores() >= req.Cores {
			return n.Name, nil
		}
	}
	return "", fmt.Errorf("%w: %d cores", ErrNoCapacity, req.Cores)
}

// BestFit picks the node whose free cores leave the least slack,
// minimizing fragmentation.
type BestFit struct{}

// SelectNode implements Policy.
func (BestFit) SelectNode(nodes []NodeState, req Request) (string, error) {
	best := ""
	bestSlack := math.MaxInt
	for _, n := range nodes {
		free := n.FreeCores()
		if free < req.Cores {
			continue
		}
		slack := free - req.Cores
		if slack < bestSlack {
			best, bestSlack = n.Name, slack
		}
	}
	if best == "" {
		return "", fmt.Errorf("%w: %d cores", ErrNoCapacity, req.Cores)
	}
	return best, nil
}

// WorstFit picks the node with the most free cores, spreading load and
// leaving room for later large requests on every node.
type WorstFit struct{}

// SelectNode implements Policy.
func (WorstFit) SelectNode(nodes []NodeState, req Request) (string, error) {
	best := ""
	bestFree := -1
	for _, n := range nodes {
		free := n.FreeCores()
		if free >= req.Cores && free > bestFree {
			best, bestFree = n.Name, free
		}
	}
	if best == "" {
		return "", fmt.Errorf("%w: %d cores", ErrNoCapacity, req.Cores)
	}
	return best, nil
}

// TopologyAware prefers the fitting node closest (per Distance) to the
// pooled resources the request needs, breaking ties by best fit. Distance
// typically counts fabric hops between the node and the pool chassis.
type TopologyAware struct {
	// Distance returns the cost between a node and the pooled resources.
	// Smaller is closer. Nil distances degrade to BestFit.
	Distance func(node string, req Request) int
}

// SelectNode implements Policy.
func (p TopologyAware) SelectNode(nodes []NodeState, req Request) (string, error) {
	if p.Distance == nil {
		return BestFit{}.SelectNode(nodes, req)
	}
	best := ""
	bestDist := math.MaxInt
	bestSlack := math.MaxInt
	for _, n := range nodes {
		free := n.FreeCores()
		if free < req.Cores {
			continue
		}
		d := p.Distance(n.Name, req)
		slack := free - req.Cores
		if d < bestDist || (d == bestDist && slack < bestSlack) {
			best, bestDist, bestSlack = n.Name, d, slack
		}
	}
	if best == "" {
		return "", fmt.Errorf("%w: %d cores", ErrNoCapacity, req.Cores)
	}
	return best, nil
}

// Package composer implements the Composability Manager the paper layers
// on top of the OFMF: the component that "can mitigate stranded resources
// by providing a method for sharing hardware, CPUs, GPUs, NVM, and
// memories". It tracks the free pool of disaggregated resources, applies a
// placement policy, and realizes compositions by provisioning capacity and
// establishing fabric connections through the OFMF — never by touching
// hardware directly.
package composer

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"ofmf/internal/obsv"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
	"ofmf/internal/tasks"
)

// Sentinel errors.
var (
	ErrNoCapacity     = errors.New("composer: no node satisfies the request")
	ErrNoPool         = errors.New("composer: no pool can satisfy the request")
	ErrUnknownComp    = errors.New("composer: unknown composition")
	ErrUnknownNode    = errors.New("composer: unknown node")
	ErrDuplicateNode  = errors.New("composer: duplicate node")
	ErrInvalidRequest = errors.New("composer: invalid request")
)

// Request asks for a composed system.
type Request struct {
	// Name labels the composed system; generated when empty.
	Name string `json:"Name,omitempty"`
	// Cores is the number of CPU cores required on the compute node.
	Cores int `json:"Cores"`
	// FabricMemoryMiB requests fabric-attached memory carved from a pool.
	FabricMemoryMiB int64 `json:"FabricMemoryMiB,omitempty"`
	// MemoryHeads bounds simultaneous sharing of the carved chunk (≥1).
	MemoryHeads int `json:"MemoryHeads,omitempty"`
	// StorageBytes requests a fabric-attached volume.
	StorageBytes int64 `json:"StorageBytes,omitempty"`
	// GPUSlices requests a GPU partition of the given size.
	GPUSlices int `json:"GPUSlices,omitempty"`
	// Node pins the composition to a specific compute node.
	Node string `json:"Node,omitempty"`
}

// MemoryPool describes one fabric-attached memory domain the composer may
// carve from. The closures decouple the composer from agent internals.
type MemoryPool struct {
	Name        string
	Chunks      odata.ID // MemoryChunks collection (provisioning target)
	Connections odata.ID // fabric Connections collection
	// Endpoint maps a compute node name to its initiator endpoint URI on
	// this pool's fabric.
	Endpoint func(node string) odata.ID
	// FreeMiB reports remaining capacity.
	FreeMiB func() int64
}

// StoragePool describes one disaggregated storage service.
type StoragePool struct {
	Name        string
	Volumes     odata.ID
	Connections odata.ID
	Endpoint    func(node string) odata.ID
	FreeBytes   func() int64
}

// GPUPool describes one pooled GPU appliance.
type GPUPool struct {
	Name        string
	Partitions  odata.ID // Processors collection (provisioning target)
	Connections odata.ID
	// HostEndpoint maps a node to the initiator reference used in
	// connections; TargetEndpoint maps a partition leaf id to its fabric
	// endpoint.
	HostEndpoint   func(node string) odata.ID
	TargetEndpoint func(partitionLeaf string) odata.ID
	FreeSlices     func() int
}

// NodeState is a snapshot of one compute node's allocation state.
type NodeState struct {
	Name      string
	Cores     int
	UsedCores int
	MemoryMiB int64
}

// FreeCores reports the node's unallocated cores.
func (n NodeState) FreeCores() int { return n.Cores - n.UsedCores }

// step records one reversible action taken during composition.
type step struct {
	kind string   // "connection", "resource", "system"
	id   odata.ID // what to delete on teardown
}

// Composition is one realized request.
type Composition struct {
	ID        string     `json:"Id"`
	SystemURI odata.ID   `json:"System"`
	BlockURI  odata.ID   `json:"ResourceBlock,omitempty"`
	Node      string     `json:"Node"`
	Request   Request    `json:"Request"`
	Resources []odata.ID `json:"Resources"`

	steps   []step
	memory  []odata.ID
	storage []odata.ID
	gpus    []odata.ID
}

// Composer is the Composability Manager.
type Composer struct {
	svc    *service.Service
	policy Policy

	mu       sync.Mutex
	nodes    map[string]*NodeState
	memPools []*MemoryPool
	stoPools []*StoragePool
	gpuPools []*GPUPool
	comps    map[string]*Composition
	nextComp int
}

// New creates a composer over the given OFMF service. policy defaults to
// FirstFit.
func New(svc *service.Service, policy Policy) *Composer {
	if policy == nil {
		policy = FirstFit{}
	}
	return &Composer{
		svc:    svc,
		policy: policy,
		nodes:  make(map[string]*NodeState),
		comps:  make(map[string]*Composition),
	}
}

// SetPolicy replaces the placement policy.
func (c *Composer) SetPolicy(p Policy) {
	c.mu.Lock()
	c.policy = p
	c.mu.Unlock()
}

// AddNode registers a compute node and publishes it as a physical
// ComputerSystem.
func (c *Composer) AddNode(name string, cores int, memoryMiB int64) error {
	c.mu.Lock()
	if _, ok := c.nodes[name]; ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDuplicateNode, name)
	}
	c.nodes[name] = &NodeState{Name: name, Cores: cores, MemoryMiB: memoryMiB}
	c.mu.Unlock()

	uri := service.SystemsURI.Append(name)
	return c.svc.Store().Put(uri, redfish.ComputerSystem{
		Resource:         odata.NewResource(uri, redfish.TypeComputerSystem, name),
		SystemType:       redfish.SystemTypePhysical,
		PowerState:       "On",
		Status:           odata.StatusOK(),
		HostName:         name,
		ProcessorSummary: &redfish.ProcessorSummary{Count: 1, TotalCores: cores},
		MemorySummary:    &redfish.MemorySummary{TotalSystemMemoryGiB: float64(memoryMiB) / 1024},
	})
}

// AddMemoryPool registers a memory pool.
func (c *Composer) AddMemoryPool(p *MemoryPool) {
	c.mu.Lock()
	c.memPools = append(c.memPools, p)
	c.mu.Unlock()
}

// AddStoragePool registers a storage pool.
func (c *Composer) AddStoragePool(p *StoragePool) {
	c.mu.Lock()
	c.stoPools = append(c.stoPools, p)
	c.mu.Unlock()
}

// AddGPUPool registers a GPU pool.
func (c *Composer) AddGPUPool(p *GPUPool) {
	c.mu.Lock()
	c.gpuPools = append(c.gpuPools, p)
	c.mu.Unlock()
}

// Nodes returns snapshots of all nodes, sorted by name.
func (c *Composer) Nodes() []NodeState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeState, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, *n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Compositions returns snapshots of live compositions, sorted by id.
func (c *Composer) Compositions() []Composition {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Composition, 0, len(c.comps))
	for _, comp := range c.comps {
		out = append(out, snapshot(comp))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns a snapshot of the composition with the given id.
func (c *Composer) Get(id string) (Composition, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	comp, ok := c.comps[id]
	if !ok {
		return Composition{}, fmt.Errorf("%w: %s", ErrUnknownComp, id)
	}
	return snapshot(comp), nil
}

// observeCompose times one composer operation, feeding the
// ofmf_compose_* metrics, recording a compose.<op> span when the request
// is traced, and emitting a log line correlated with the request id
// carried in ctx. fn receives the (possibly span-carrying) context so the
// store and agent operations underneath parent onto the compose span.
func (c *Composer) observeCompose(ctx context.Context, op string, fn func(ctx context.Context) error) error {
	ctx, span := c.svc.Tracer().StartIfTraced(ctx, "compose."+op)
	start := time.Now()
	err := fn(ctx)
	elapsed := time.Since(start)
	span.EndErr(err)
	outcome := obsv.Outcome(err)
	m := c.svc.Metrics()
	m.ComposeOps.With(op, outcome).Inc()
	m.ComposeDuration.With(op, outcome).Observe(elapsed.Seconds())
	c.svc.Logger().LogAttrs(ctx, slog.LevelInfo, "compose op",
		slog.String("op", op),
		slog.String("outcome", outcome),
		slog.Duration("duration", elapsed),
	)
	return err
}

// Compose realizes the request with a background context; see ComposeCtx.
func (c *Composer) Compose(req Request) (Composition, error) {
	return c.ComposeCtx(context.Background(), req)
}

// ComposeCtx realizes the request: it selects a node under the placement
// policy, provisions fabric memory, storage and GPU capacity through the
// OFMF, establishes the connections, and publishes the composed system.
// Any failure rolls back every prior step. The context carries the
// request id for log correlation and is threaded through every OFMF
// operation performed on behalf of the composition.
func (c *Composer) ComposeCtx(ctx context.Context, req Request) (Composition, error) {
	var comp Composition
	err := c.observeCompose(ctx, "compose", func(ctx context.Context) error {
		var err error
		comp, err = c.compose(ctx, req)
		return err
	})
	return comp, err
}

func (c *Composer) compose(ctx context.Context, req Request) (Composition, error) {
	if req.Cores <= 0 {
		return Composition{}, fmt.Errorf("%w: Cores must be positive", ErrInvalidRequest)
	}
	if req.MemoryHeads < 1 {
		req.MemoryHeads = 1
	}

	// Select and reserve the node.
	c.mu.Lock()
	nodeName, err := c.selectNodeLocked(req)
	if err != nil {
		c.mu.Unlock()
		return Composition{}, err
	}
	c.nodes[nodeName].UsedCores += req.Cores
	c.nextComp++
	compID := fmt.Sprintf("comp-%d", c.nextComp)
	c.mu.Unlock()

	name := req.Name
	if name == "" {
		name = compID
	}
	comp := &Composition{ID: compID, Node: nodeName, Request: req}

	rollback := func() {
		c.teardown(ctx, comp)
		c.mu.Lock()
		c.nodes[nodeName].UsedCores -= req.Cores
		c.mu.Unlock()
	}

	if req.FabricMemoryMiB > 0 {
		if err := c.attachMemory(ctx, comp, nodeName, req.FabricMemoryMiB, req.MemoryHeads); err != nil {
			rollback()
			return Composition{}, err
		}
	}
	if req.StorageBytes > 0 {
		if err := c.attachStorage(ctx, comp, nodeName, req.StorageBytes); err != nil {
			rollback()
			return Composition{}, err
		}
	}
	if req.GPUSlices > 0 {
		if err := c.attachGPU(ctx, comp, nodeName, req.GPUSlices); err != nil {
			rollback()
			return Composition{}, err
		}
	}

	// Publish the composed system.
	sysURI := service.SystemsURI.Append(name)
	sys := redfish.ComputerSystem{
		Resource:         odata.NewResource(sysURI, redfish.TypeComputerSystem, name),
		SystemType:       redfish.SystemTypeComposed,
		PowerState:       "On",
		Status:           odata.Status{State: odata.StateComposed, Health: odata.HealthOK},
		HostName:         nodeName,
		ProcessorSummary: &redfish.ProcessorSummary{Count: 1, TotalCores: req.Cores},
	}
	for _, res := range comp.Resources {
		sys.Links.ResourceBlocks = append(sys.Links.ResourceBlocks, odata.NewRef(res))
	}
	if err := c.svc.Store().CreateCtx(ctx, sysURI, sys); err != nil {
		rollback()
		return Composition{}, fmt.Errorf("composer: publish system: %w", err)
	}
	comp.SystemURI = sysURI
	comp.steps = append(comp.steps, step{kind: "system", id: sysURI})

	// Publish the Redfish-native composition view: a ResourceBlock in the
	// CompositionService bundling the composed resources.
	blockURI := service.ResourceBlocksURI.Append(compID)
	if err := c.svc.Store().PutCtx(ctx, blockURI, c.resourceBlock(blockURI, comp)); err != nil {
		rollback()
		return Composition{}, fmt.Errorf("composer: publish resource block: %w", err)
	}
	comp.BlockURI = blockURI
	comp.steps = append(comp.steps, step{kind: "system", id: blockURI})

	c.mu.Lock()
	c.comps[compID] = comp
	c.mu.Unlock()

	c.svc.Bus().PublishCtx(ctx, redfish.EventRecord{
		EventType:         redfish.EventResourceAdded,
		EventID:           compID,
		Severity:          "OK",
		Message:           fmt.Sprintf("composed system %s on node %s", name, nodeName),
		MessageID:         "OFMF.1.0.SystemComposed",
		OriginOfCondition: refTo(sysURI),
	})

	snap, _ := c.Get(compID)
	return snap, nil
}

func refTo(id odata.ID) *odata.Ref {
	r := odata.NewRef(id)
	return &r
}

// snapshot copies a composition for external callers, dropping internal
// bookkeeping.
func snapshot(comp *Composition) Composition {
	cp := *comp
	cp.Resources = append([]odata.ID(nil), comp.Resources...)
	cp.steps = nil
	cp.memory, cp.storage, cp.gpus = nil, nil, nil
	return cp
}

// resourceBlock renders the composition as a ResourceBlock resource.
func (c *Composer) resourceBlock(uri odata.ID, comp *Composition) redfish.ResourceBlock {
	block := redfish.ResourceBlock{
		Resource:          odata.NewResource(uri, redfish.TypeResourceBlock, "Composition "+comp.ID),
		ResourceBlockType: []string{redfish.BlockCompute},
		CompositionStatus: redfish.CompositionStatus{CompositionState: redfish.CompositionComposed},
		Status:            odata.StatusOK(),
		Memory:            odata.RefSlice(comp.memory),
		Storage:           odata.RefSlice(comp.storage),
		Processors:        odata.RefSlice(comp.gpus),
	}
	if len(comp.memory) > 0 {
		block.ResourceBlockType = append(block.ResourceBlockType, redfish.BlockMemory)
	}
	if len(comp.storage) > 0 {
		block.ResourceBlockType = append(block.ResourceBlockType, redfish.BlockStorage)
	}
	if len(comp.gpus) > 0 {
		block.ResourceBlockType = append(block.ResourceBlockType, redfish.BlockProcessor)
	}
	if !comp.SystemURI.IsZero() {
		block.Links.ComputerSystems = []odata.Ref{odata.NewRef(comp.SystemURI)}
	}
	return block
}

func (c *Composer) selectNodeLocked(req Request) (string, error) {
	if req.Node != "" {
		n, ok := c.nodes[req.Node]
		if !ok {
			return "", fmt.Errorf("%w: %s", ErrUnknownNode, req.Node)
		}
		if n.FreeCores() < req.Cores {
			return "", fmt.Errorf("%w: node %s has %d free cores, need %d",
				ErrNoCapacity, req.Node, n.FreeCores(), req.Cores)
		}
		return req.Node, nil
	}
	states := make([]NodeState, 0, len(c.nodes))
	for _, n := range c.nodes {
		states = append(states, *n)
	}
	sort.Slice(states, func(i, j int) bool { return states[i].Name < states[j].Name })
	return c.policy.SelectNode(states, req)
}

// attachMemory carves a chunk from the first pool with capacity, zones
// the initiator endpoint, and connects the chunk to the node.
func (c *Composer) attachMemory(ctx context.Context, comp *Composition, node string, sizeMiB int64, heads int) error {
	c.mu.Lock()
	pools := append([]*MemoryPool(nil), c.memPools...)
	c.mu.Unlock()
	for _, p := range pools {
		if p.FreeMiB() < sizeMiB {
			continue
		}
		mark := len(comp.steps)
		payload := fmt.Sprintf(`{"MemoryChunkSizeMiB": %d, "Oem": {"OFMF": {"MaxHeads": %d}}}`, sizeMiB, heads)
		chunkURI, err := c.svc.ProvisionResource(ctx, p.Chunks, []byte(payload))
		if err != nil {
			continue
		}
		comp.steps = append(comp.steps, step{kind: "resource", id: chunkURI})
		// Zone the composition's initiator on this fabric (zone-of-
		// endpoints granting the node access to the pooled device).
		zone, err := c.svc.CreateZone(ctx, p.Connections.Parent().Append("Zones"), redfish.Zone{
			Resource: odata.Resource{Name: "Zone for " + comp.ID},
			ZoneType: redfish.ZoneTypeZoneOfEndpoints,
			Links:    redfish.ZoneLinks{Endpoints: []odata.Ref{odata.NewRef(p.Endpoint(node))}},
		})
		if err == nil {
			comp.steps = append(comp.steps, step{kind: "zone", id: zone.ODataID})
		}
		conn := redfish.Connection{
			ConnectionType: "Memory",
			MemoryChunkInfo: []redfish.MemoryChunkInfo{{
				AccessCapabilities: []string{"Read", "Write"},
				MemoryChunk:        redfish.Ref(chunkURI),
			}},
			Links: redfish.ConnectionLinks{
				InitiatorEndpoints: []odata.Ref{odata.NewRef(p.Endpoint(node))},
			},
		}
		created, err := c.svc.CreateConnection(ctx, p.Connections, conn)
		if err != nil {
			c.undoSteps(ctx, comp, len(comp.steps)-mark)
			return fmt.Errorf("composer: memory connection: %w", err)
		}
		comp.steps = append(comp.steps, step{kind: "connection", id: created.ODataID})
		comp.Resources = append(comp.Resources, chunkURI)
		comp.memory = append(comp.memory, chunkURI)
		return nil
	}
	return fmt.Errorf("%w: %d MiB of fabric memory", ErrNoPool, sizeMiB)
}

// undoSteps reverses up to n of the composition's most recent steps.
func (c *Composer) undoSteps(ctx context.Context, comp *Composition, n int) {
	for i := 0; i < n && len(comp.steps) > 0; i++ {
		st := comp.steps[len(comp.steps)-1]
		comp.steps = comp.steps[:len(comp.steps)-1]
		switch st.kind {
		case "connection":
			_ = c.svc.DeleteConnection(ctx, st.id)
		case "zone":
			_ = c.svc.DeleteZone(ctx, st.id)
		case "resource":
			_ = c.svc.DeprovisionResource(ctx, st.id)
		case "system":
			_ = c.svc.Store().DeleteCtx(ctx, st.id)
		}
	}
}

// attachStorage provisions a volume and connects it to the node.
func (c *Composer) attachStorage(ctx context.Context, comp *Composition, node string, bytes int64) error {
	c.mu.Lock()
	pools := append([]*StoragePool(nil), c.stoPools...)
	c.mu.Unlock()
	for _, p := range pools {
		if p.FreeBytes() < bytes {
			continue
		}
		payload := fmt.Sprintf(`{"CapacityBytes": %d}`, bytes)
		volURI, err := c.svc.ProvisionResource(ctx, p.Volumes, []byte(payload))
		if err != nil {
			continue
		}
		comp.steps = append(comp.steps, step{kind: "resource", id: volURI})
		conn := redfish.Connection{
			ConnectionType: "Storage",
			VolumeInfo:     []redfish.VolumeInfo{{AccessCapabilities: []string{"Read", "Write"}, Volume: redfish.Ref(volURI)}},
			Links: redfish.ConnectionLinks{
				InitiatorEndpoints: []odata.Ref{odata.NewRef(p.Endpoint(node))},
			},
		}
		created, err := c.svc.CreateConnection(ctx, p.Connections, conn)
		if err != nil {
			_ = c.svc.DeprovisionResource(ctx, volURI)
			comp.steps = comp.steps[:len(comp.steps)-1]
			return fmt.Errorf("composer: storage connection: %w", err)
		}
		comp.steps = append(comp.steps, step{kind: "connection", id: created.ODataID})
		comp.Resources = append(comp.Resources, volURI)
		comp.storage = append(comp.storage, volURI)
		return nil
	}
	return fmt.Errorf("%w: %d bytes of storage", ErrNoPool, bytes)
}

// attachGPU carves a partition and connects it to the node.
func (c *Composer) attachGPU(ctx context.Context, comp *Composition, node string, slices int) error {
	c.mu.Lock()
	pools := append([]*GPUPool(nil), c.gpuPools...)
	c.mu.Unlock()
	for _, p := range pools {
		if p.FreeSlices() < slices {
			continue
		}
		payload := fmt.Sprintf(`{"Oem": {"OFMF": {"Slices": %d}}}`, slices)
		partURI, err := c.svc.ProvisionResource(ctx, p.Partitions, []byte(payload))
		if err != nil {
			continue
		}
		comp.steps = append(comp.steps, step{kind: "resource", id: partURI})
		conn := redfish.Connection{
			Links: redfish.ConnectionLinks{
				InitiatorEndpoints: []odata.Ref{odata.NewRef(p.HostEndpoint(node))},
				TargetEndpoints:    []odata.Ref{odata.NewRef(p.TargetEndpoint(partURI.Leaf()))},
			},
		}
		created, err := c.svc.CreateConnection(ctx, p.Connections, conn)
		if err != nil {
			_ = c.svc.DeprovisionResource(ctx, partURI)
			comp.steps = comp.steps[:len(comp.steps)-1]
			return fmt.Errorf("composer: gpu connection: %w", err)
		}
		comp.steps = append(comp.steps, step{kind: "connection", id: created.ODataID})
		comp.Resources = append(comp.Resources, partURI)
		comp.gpus = append(comp.gpus, partURI)
		return nil
	}
	return fmt.Errorf("%w: %d GPU slices", ErrNoPool, slices)
}

// teardown reverses a composition's steps in LIFO order.
func (c *Composer) teardown(ctx context.Context, comp *Composition) {
	c.undoSteps(ctx, comp, len(comp.steps))
}

// Decompose tears down a composition with a background context; see
// DecomposeCtx.
func (c *Composer) Decompose(id string) error {
	return c.DecomposeCtx(context.Background(), id)
}

// DecomposeCtx tears down a composition, returning its resources to the
// free pool.
func (c *Composer) DecomposeCtx(ctx context.Context, id string) error {
	return c.observeCompose(ctx, "decompose", func(ctx context.Context) error {
		return c.decompose(ctx, id)
	})
}

func (c *Composer) decompose(ctx context.Context, id string) error {
	c.mu.Lock()
	comp, ok := c.comps[id]
	if ok {
		delete(c.comps, id)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownComp, id)
	}
	c.teardown(ctx, comp)
	c.mu.Lock()
	if n, ok := c.nodes[comp.Node]; ok {
		n.UsedCores -= comp.Request.Cores
		if n.UsedCores < 0 {
			n.UsedCores = 0
		}
	}
	c.mu.Unlock()

	c.svc.Bus().PublishCtx(ctx, redfish.EventRecord{
		EventType:         redfish.EventResourceRemoved,
		EventID:           id,
		Severity:          "OK",
		Message:           fmt.Sprintf("decomposed system %s", id),
		MessageID:         "OFMF.1.0.SystemDecomposed",
		OriginOfCondition: refTo(comp.SystemURI),
	})
	return nil
}

// HotAddMemory carves and connects an additional memory chunk to a live
// composition — the paper's out-of-memory mitigation path.
func (c *Composer) HotAddMemory(compID string, sizeMiB int64) error {
	return c.HotAddMemoryCtx(context.Background(), compID, sizeMiB)
}

// HotAddMemoryCtx is HotAddMemory with log/metric correlation via ctx.
func (c *Composer) HotAddMemoryCtx(ctx context.Context, compID string, sizeMiB int64) error {
	return c.observeCompose(ctx, "hot_add_memory", func(ctx context.Context) error {
		return c.hotAddMemory(ctx, compID, sizeMiB)
	})
}

func (c *Composer) hotAddMemory(ctx context.Context, compID string, sizeMiB int64) error {
	c.mu.Lock()
	comp, ok := c.comps[compID]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownComp, compID)
	}
	if err := c.attachMemory(ctx, comp, comp.Node, sizeMiB, 1); err != nil {
		return err
	}
	// Refresh the composed system's resource links and the block view.
	patch := map[string]any{"Links": map[string]any{"ResourceBlocks": refList(comp.Resources)}}
	if err := c.svc.Store().PatchCtx(ctx, comp.SystemURI, patch, ""); err != nil {
		return err
	}
	if !comp.BlockURI.IsZero() {
		if err := c.svc.Store().PutCtx(ctx, comp.BlockURI, c.resourceBlock(comp.BlockURI, comp)); err != nil {
			return err
		}
	}
	c.svc.Bus().PublishCtx(ctx, redfish.EventRecord{
		EventType:         redfish.EventResourceUpdated,
		EventID:           compID,
		Severity:          "OK",
		Message:           fmt.Sprintf("hot-added %d MiB to %s", sizeMiB, compID),
		MessageID:         "OFMF.1.0.MemoryHotAdded",
		OriginOfCondition: refTo(comp.SystemURI),
	})
	return nil
}

func refList(ids []odata.ID) []map[string]string {
	out := make([]map[string]string, len(ids))
	for i, id := range ids {
		out[i] = map[string]string{"@odata.id": string(id)}
	}
	return out
}

// ComposeAsync realizes the request on a background goroutine tracked by
// the OFMF TaskService, returning immediately with the task. Clients poll
// the task monitor URI; on completion the task's last message carries the
// composition id and system URI.
func (c *Composer) ComposeAsync(req Request) *tasks.Task {
	task := c.svc.Tasks().Start("Compose " + req.Name)
	go func() {
		_ = task.Progress(10, "selecting node and provisioning resources")
		comp, err := c.Compose(req)
		if err != nil {
			_ = task.Fail(err.Error())
			return
		}
		select {
		case <-task.Cancelled():
			// Cancelled mid-flight: undo the composition.
			_ = c.Decompose(comp.ID)
			return
		default:
		}
		_ = task.Progress(90, "publishing composed system")
		_ = task.Complete(fmt.Sprintf("composed %s at %s", comp.ID, comp.SystemURI))
	}()
	return task
}

// ComposeSystem implements service.SystemComposer: the payload is either
// a bare Request or a ComputerSystem-shaped document carrying the request
// under Oem.OFMF, per the DMTF specific-composition pattern.
func (c *Composer) ComposeSystem(ctx context.Context, payload []byte) (odata.ID, error) {
	var envelope struct {
		Name string `json:"Name"`
		Oem  struct {
			OFMF *Request `json:"OFMF"`
		} `json:"Oem"`
		// Bare-request fields accepted at top level too.
		Cores           int    `json:"Cores"`
		FabricMemoryMiB int64  `json:"FabricMemoryMiB"`
		MemoryHeads     int    `json:"MemoryHeads"`
		StorageBytes    int64  `json:"StorageBytes"`
		GPUSlices       int    `json:"GPUSlices"`
		Node            string `json:"Node"`
	}
	if err := json.Unmarshal(payload, &envelope); err != nil {
		return "", fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	var req Request
	if envelope.Oem.OFMF != nil {
		req = *envelope.Oem.OFMF
		if req.Name == "" {
			req.Name = envelope.Name
		}
	} else {
		req = Request{
			Name:            envelope.Name,
			Cores:           envelope.Cores,
			FabricMemoryMiB: envelope.FabricMemoryMiB,
			MemoryHeads:     envelope.MemoryHeads,
			StorageBytes:    envelope.StorageBytes,
			GPUSlices:       envelope.GPUSlices,
			Node:            envelope.Node,
		}
	}
	comp, err := c.ComposeCtx(ctx, req)
	if err != nil {
		return "", err
	}
	return comp.SystemURI, nil
}

// DecomposeSystem implements service.SystemComposer: it finds the
// composition owning the system URI and tears it down.
func (c *Composer) DecomposeSystem(ctx context.Context, systemURI odata.ID) error {
	c.mu.Lock()
	id := ""
	for cid, comp := range c.comps {
		if comp.SystemURI == systemURI {
			id = cid
			break
		}
	}
	c.mu.Unlock()
	if id == "" {
		return fmt.Errorf("%w: system %s", ErrUnknownComp, systemURI)
	}
	return c.DecomposeCtx(ctx, id)
}

// Stats summarizes pool utilization for stranding analysis.
type Stats struct {
	TotalCores    int
	UsedCores     int
	Compositions  int
	FreeMemoryMiB int64
	FreeStorageB  int64
	FreeGPUSlices int
}

// Stats returns current utilization counters.
func (c *Composer) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s Stats
	for _, n := range c.nodes {
		s.TotalCores += n.Cores
		s.UsedCores += n.UsedCores
	}
	s.Compositions = len(c.comps)
	for _, p := range c.memPools {
		s.FreeMemoryMiB += p.FreeMiB()
	}
	for _, p := range c.stoPools {
		s.FreeStorageB += p.FreeBytes()
	}
	for _, p := range c.gpuPools {
		s.FreeGPUSlices += p.FreeSlices()
	}
	return s
}

package core_test

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ofmf/internal/core"
	"ofmf/internal/obsv"
	"ofmf/internal/service"
)

// syncBuffer makes the log sink safe for the framework's goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestObservabilityEndToEnd drives one compose/decompose cycle and checks
// the full observability loop: /metrics exposition reflects the traffic,
// the compose path is timed, the ManagementPlane self-telemetry report is
// served from the Redfish tree, and every log line of the traced request
// carries the request id the client received in X-Request-Id.
func TestObservabilityEndToEnd(t *testing.T) {
	logs := &syncBuffer{}
	f, err := core.New(core.Config{
		Nodes: 2,
		Service: service.Config{
			Logger: obsv.NewLogger(logs, slog.LevelDebug),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	mux := http.NewServeMux()
	mux.Handle("/", f.Handler())
	mux.Handle("/metrics", f.Service.Metrics().Registry().Handler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Compose through the Redfish-native path.
	resp, err := http.Post(srv.URL+"/redfish/v1/Systems", "application/json",
		strings.NewReader(`{"Name":"obs-sys","Cores":2,"FabricMemoryMiB":1024}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("compose = %d: %s", resp.StatusCode, body)
	}
	reqID := resp.Header.Get(obsv.RequestIDHeader)
	if reqID == "" {
		t.Fatal("compose response missing X-Request-Id")
	}

	// Every log line of the compose request carries the same request id:
	// the middleware line, the compose-op line, and the agent-op lines for
	// the provisioning and connection forwarded to the CXL agent.
	logText := logs.String()
	for _, wantMsg := range []string{"http request", "compose op", "agent op"} {
		found := false
		for _, line := range strings.Split(logText, "\n") {
			if strings.Contains(line, `msg="`+wantMsg+`"`) && strings.Contains(line, "request_id="+reqID) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %q log line with request_id=%s\nlogs:\n%s", wantMsg, reqID, logText)
		}
	}

	// Decompose.
	var sys struct {
		ODataID string `json:"@odata.id"`
	}
	if err := json.Unmarshal(body, &sys); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+sys.ODataID, nil)
	resp, err = (&http.Client{}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("decompose = %d", resp.StatusCode)
	}

	// Scrape /metrics: request counters and compose timings are live.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != obsv.ContentType {
		t.Errorf("metrics Content-Type = %q", got)
	}
	metricsText := string(expo)
	for _, want := range []string{
		`ofmf_http_requests_total{method="POST",class="Systems",code="201"} 1`,
		`ofmf_http_requests_total{method="DELETE",class="Systems",code="204"} 1`,
		`ofmf_compose_duration_seconds_count{op="compose",outcome="ok"} 1`,
		`ofmf_compose_duration_seconds_count{op="decompose",outcome="ok"} 1`,
		`ofmf_agent_ops_total{fabric="CXLMemoryAppliance",op="CreateResource",outcome="ok"} 1`,
		`ofmf_agent_ops_total{fabric="CXL",op="CreateConnection",outcome="ok"} 1`,
		`ofmf_store_ops_total{op="get",shard=`,
		`ofmf_store_shards`,
		`ofmf_store_shard_entries{shard="0"}`,
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The self-telemetry report is a plain Redfish resource.
	resp, err = http.Get(srv.URL + "/redfish/v1/TelemetryService/MetricReports/ManagementPlane")
	if err != nil {
		t.Fatal(err)
	}
	repBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ManagementPlane report = %d: %s", resp.StatusCode, repBody)
	}
	var report struct {
		MetricValues []struct {
			MetricID       string `json:"MetricId"`
			MetricProperty string `json:"MetricProperty"`
		} `json:"MetricValues"`
	}
	if err := json.Unmarshal(repBody, &report); err != nil {
		t.Fatal(err)
	}
	hasSelf := false
	for _, mv := range report.MetricValues {
		if mv.MetricID == "ofmf_store_ops_total" {
			hasSelf = true
			if !strings.HasPrefix(mv.MetricProperty, "ofmf_store_ops_total{op=") {
				t.Errorf("MetricProperty = %q", mv.MetricProperty)
			}
		}
	}
	if !hasSelf {
		t.Errorf("report has no ofmf_store_ops_total values: %s", repBody)
	}
}

// TestComposerFacadeInstrumented checks the /composer/v1 facade shares
// the observability middleware and the Redfish error envelope.
func TestComposerFacadeInstrumented(t *testing.T) {
	f, err := core.New(core.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	// Unknown composition: Redfish envelope with request id.
	resp, err := http.Get(srv.URL + "/composer/v1/Compositions/ghost")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get(obsv.RequestIDHeader) == "" {
		t.Error("composer response missing X-Request-Id")
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
			Info []struct {
				MessageID string `json:"MessageId"`
			} `json:"@Message.ExtendedInfo"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("not a Redfish envelope: %v: %s", err, body)
	}
	if env.Error.Code != "Base.1.0.ResourceMissingAtURI" || len(env.Error.Info) != 1 {
		t.Errorf("envelope = %s", body)
	}

	// The request landed in the Composer route class.
	if got := f.Service.Metrics().HTTPRequests.With("GET", "Composer", "404").Value(); got != 1 {
		t.Errorf("composer request counter = %v, want 1", got)
	}
}

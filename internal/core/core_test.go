package core_test

import (
	"testing"

	"ofmf/internal/composer"
	"ofmf/internal/core"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
)

func TestFrameworkDefaults(t *testing.T) {
	f, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if len(f.NodeNames) != 4 {
		t.Errorf("nodes = %d", len(f.NodeNames))
	}
	if f.CXL.FreeMiB() != 4*256*1024 {
		t.Errorf("cxl = %d", f.CXL.FreeMiB())
	}
	if f.GPUs.FreeSlices() != 56 {
		t.Errorf("gpu slices = %d", f.GPUs.FreeSlices())
	}
	stats := f.Composer.Stats()
	if stats.TotalCores != 4*56 {
		t.Errorf("cores = %d", stats.TotalCores)
	}
}

func TestFrameworkTreeComplete(t *testing.T) {
	f, err := core.New(core.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st := f.Service.Store()

	// All four fabrics published.
	fabrics, err := st.Members(service.FabricsURI)
	if err != nil {
		t.Fatal(err)
	}
	if len(fabrics) != 4 {
		t.Errorf("fabrics = %v", fabrics)
	}
	// Physical systems registered.
	systems, err := st.Members(service.SystemsURI)
	if err != nil {
		t.Fatal(err)
	}
	if len(systems) != 2 {
		t.Errorf("systems = %v", systems)
	}
	// Agents registered as aggregation sources.
	sources, err := st.Members(service.AggregationSourcesURI)
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 4 {
		t.Errorf("sources = %v", sources)
	}
	// Storage subtree present.
	if !st.Exists(f.NVMeAgent.StorageID()) {
		t.Error("storage subtree missing")
	}
}

func TestNodeName(t *testing.T) {
	if core.NodeName(0) != "node001" || core.NodeName(127) != "node128" {
		t.Errorf("names = %s, %s", core.NodeName(0), core.NodeName(127))
	}
}

func TestTelemetryReportsUtilization(t *testing.T) {
	f, err := core.New(core.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	comp, err := f.Composer.Compose(composer.Request{Cores: 8, FabricMemoryMiB: 2048, GPUSlices: 3})
	if err != nil {
		t.Fatal(err)
	}
	report, err := f.Telem.Generate("pool-utilization")
	if err != nil {
		t.Fatal(err)
	}
	values := make(map[string]string)
	for _, v := range report.MetricValues {
		values[v.MetricID] = v.MetricValue
	}
	if values["UsedCores"] != "8" {
		t.Errorf("UsedCores = %q", values["UsedCores"])
	}
	if values["FreeGPUSlices"] != "53" {
		t.Errorf("FreeGPUSlices = %q", values["FreeGPUSlices"])
	}
	// Report is browsable in the tree.
	uri := service.TelemetryServiceURI.Append("MetricReports", "pool-utilization")
	var stored redfish.MetricReport
	if err := f.Service.Store().GetAs(uri, &stored); err != nil {
		t.Fatal(err)
	}
	if len(stored.MetricValues) != 4 {
		t.Errorf("stored values = %d", len(stored.MetricValues))
	}
	if err := f.Composer.Decompose(comp.ID); err != nil {
		t.Fatal(err)
	}
}

func TestCollectionsBrowsable(t *testing.T) {
	f, err := core.New(core.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st := f.Service.Store()
	for _, coll := range []odata.ID{
		f.CXLAgent.FabricID().Append("Endpoints"),
		f.CXLAgent.ChassisID().Append("Memory"),
		f.NVMeAgent.StorageID().Append("StoragePools"),
		f.FabAgent.FabricID().Append("Switches"),
		f.GPUAgent.ChassisID().Append("GPUs"),
	} {
		members, err := st.Members(coll)
		if err != nil {
			t.Errorf("%s: %v", coll, err)
			continue
		}
		if len(members) == 0 {
			t.Errorf("%s: empty", coll)
		}
	}
}

// TestRedfishConformanceWalk GETs every resource the testbed serves and
// validates the Redfish invariants: @odata.id equals the request URI,
// @odata.type is present, and every link target under the service root
// resolves (no dangling references).
func TestRedfishConformanceWalk(t *testing.T) {
	f, err := core.New(core.Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Add a composition so composed resources are walked too.
	if _, err := f.Composer.Compose(composer.Request{Cores: 4, FabricMemoryMiB: 1024, StorageBytes: 1 << 20, GPUSlices: 1}); err != nil {
		t.Fatal(err)
	}
	st := f.Service.Store()
	ids := st.IDs()
	if len(ids) < 50 {
		t.Fatalf("suspiciously small tree: %d resources", len(ids))
	}
	exists := make(map[odata.ID]bool, len(ids))
	for _, id := range ids {
		exists[id] = true
	}
	var walked, links, dangling int
	for _, id := range ids {
		var res map[string]any
		if err := st.GetAs(id, &res); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		walked++
		if got, _ := res["@odata.id"].(string); got != string(id) {
			t.Errorf("%s: @odata.id = %q", id, got)
		}
		if ot, _ := res["@odata.type"].(string); ot == "" {
			t.Errorf("%s: missing @odata.type", id)
		}
		for _, target := range collectRefs(res) {
			links++
			if !exists[target] && !st.IsCollection(target) {
				dangling++
				t.Errorf("%s: dangling link to %s", id, target)
			}
		}
	}
	t.Logf("walked %d resources, %d links, %d dangling", walked, links, dangling)
}

// collectRefs finds every @odata.id reference inside a resource payload
// (excluding the resource's own identity member).
func collectRefs(res map[string]any) []odata.ID {
	var out []odata.ID
	var walk func(v any)
	walk = func(v any) {
		switch x := v.(type) {
		case map[string]any:
			for k, val := range x {
				if k == "@odata.id" {
					if s, ok := val.(string); ok && s != "" {
						out = append(out, odata.ID(s))
					}
					continue
				}
				walk(val)
			}
		case []any:
			for _, item := range x {
				walk(item)
			}
		}
	}
	for k, val := range res {
		if k == "@odata.id" { // the resource's own identity
			continue
		}
		walk(val)
	}
	return out
}

func TestCloseIsClean(t *testing.T) {
	f, err := core.New(core.Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	// After close the service store is still readable (no panics), and a
	// new framework can be built independently.
	if f.Service.Store().Len() == 0 {
		t.Error("store emptied by close")
	}
	f2, err := core.New(core.Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	f2.Close()
}

// Package core assembles a complete OFMF deployment in one process: the
// management service, the emulated hardware (CXL memory appliance,
// NVMe-oF target, cluster fabric, GPU pool), the four technology-specific
// Agents, the Composability Manager with its rule engine, and the
// telemetry collectors. It is the "testbed in a box" used by the
// examples, the integration tests and the benchmark harness — the same
// wiring a physical deployment would perform across machines.
package core

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"ofmf/internal/agent"
	"ofmf/internal/agent/cxlagent"
	"ofmf/internal/agent/fabagent"
	"ofmf/internal/agent/gpuagent"
	"ofmf/internal/agent/nvmeagent"
	"ofmf/internal/composer"
	"ofmf/internal/emul/cxlsim"
	"ofmf/internal/emul/fabsim"
	"ofmf/internal/emul/gpusim"
	"ofmf/internal/emul/nvmesim"
	"ofmf/internal/obsv"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
	"ofmf/internal/telemetry"
)

// Config sizes the testbed.
type Config struct {
	// Nodes is the number of compute nodes (default 4).
	Nodes int
	// CoresPerNode is each node's core count (default 56, matching the
	// paper's ThunderX2 platform).
	CoresPerNode int
	// NodeMemoryMiB is each node's local memory (default 128 GiB).
	NodeMemoryMiB int64
	// CXLDevices and CXLDeviceMiB size the pooled memory appliance
	// (default 4 × 256 GiB).
	CXLDevices   int
	CXLDeviceMiB int64
	// NVMePoolBytes sizes the disaggregated storage pool (default 16 TiB).
	NVMePoolBytes int64
	// GPUs and SlicesPerGPU size the GPU pool (default 8 × 7).
	GPUs         int
	SlicesPerGPU int
	// Policy is the composer placement policy (default FirstFit).
	Policy composer.Policy
	// Service overrides pieces of the OFMF service configuration; the
	// DirectWrites field is forced on for in-process components.
	Service service.Config
	// OOMHotAddMiB enables the out-of-memory mitigation rule with the
	// given hot-add step when positive.
	OOMHotAddMiB int64
}

func (c *Config) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.CoresPerNode <= 0 {
		c.CoresPerNode = 56
	}
	if c.NodeMemoryMiB <= 0 {
		c.NodeMemoryMiB = 128 * 1024
	}
	if c.CXLDevices <= 0 {
		c.CXLDevices = 4
	}
	if c.CXLDeviceMiB <= 0 {
		c.CXLDeviceMiB = 256 * 1024
	}
	if c.NVMePoolBytes <= 0 {
		c.NVMePoolBytes = 16 << 40
	}
	if c.GPUs <= 0 {
		c.GPUs = 8
	}
	if c.SlicesPerGPU <= 0 {
		c.SlicesPerGPU = 7
	}
}

// Framework is the assembled testbed.
type Framework struct {
	Service  *service.Service
	Composer *composer.Composer
	Rules    *composer.RuleEngine
	Telem    *telemetry.Service

	CXL       *cxlsim.Appliance
	CXLAgent  *cxlagent.Agent
	NVMe      *nvmesim.Target
	NVMeAgent *nvmeagent.Agent
	Fabric    *fabsim.Fabric
	FabAgent  *fabagent.Agent
	GPUs      *gpusim.Pool
	GPUAgent  *gpuagent.Agent

	// NodeNames lists the compute node names ("node001", ...).
	NodeNames []string

	telemStop chan struct{}
	closeOnce sync.Once
}

// NodeName formats the canonical name of node i (0-based).
func NodeName(i int) string { return fmt.Sprintf("node%03d", i+1) }

// New builds and starts a framework. The returned framework is fully
// operational: agents registered and publishing, composer stocked with
// pools, rules bound.
func New(cfg Config) (*Framework, error) {
	cfg.defaults()
	svcCfg := cfg.Service
	svcCfg.DirectWrites = true
	f := &Framework{Service: service.New(svcCfg)}
	conn := &agent.Local{Service: f.Service}

	for i := 0; i < cfg.Nodes; i++ {
		f.NodeNames = append(f.NodeNames, NodeName(i))
	}

	// CXL memory appliance: one host port per node.
	f.CXL = cxlsim.New(cxlsim.WithoutSleep())
	for i := 0; i < cfg.CXLDevices; i++ {
		if err := f.CXL.AddDevice(fmt.Sprintf("dev%d", i), cfg.CXLDeviceMiB, "DRAM"); err != nil {
			return nil, err
		}
	}
	for _, n := range f.NodeNames {
		if err := f.CXL.AddPort(n); err != nil {
			return nil, err
		}
	}
	f.CXLAgent = cxlagent.New(conn, f.CXL, "CXL", "CXLMemoryAppliance")
	if err := f.CXLAgent.Start(); err != nil {
		return nil, err
	}

	// NVMe-oF target.
	f.NVMe = nvmesim.New()
	if err := f.NVMe.AddPool("pool0", cfg.NVMePoolBytes); err != nil {
		return nil, err
	}
	f.NVMeAgent = nvmeagent.New(conn, f.NVMe, "NVMe", "JBOF1")
	for _, n := range f.NodeNames {
		f.NVMeAgent.RegisterHost(n)
	}
	if err := f.NVMeAgent.Start(); err != nil {
		return nil, err
	}

	// Cluster interconnect: two-level fat tree over the compute nodes.
	f.Fabric = fabsim.New()
	nLeaf := (cfg.Nodes + 15) / 16
	if nLeaf < 2 {
		nLeaf = 2
	}
	nSpine := 2
	hostsPerLeaf := (cfg.Nodes + nLeaf - 1) / nLeaf
	if _, err := fabsim.BuildFatTree(f.Fabric, "port-", nLeaf, nSpine, hostsPerLeaf, 100, 400); err != nil {
		return nil, err
	}
	f.FabAgent = fabagent.New(conn, f.Fabric, "HPC", redfish.ProtocolInfiniBand)
	if err := f.FabAgent.Start(); err != nil {
		return nil, err
	}

	// GPU pool.
	f.GPUs = gpusim.New()
	for i := 0; i < cfg.GPUs; i++ {
		if err := f.GPUs.AddGPU(fmt.Sprintf("gpu%d", i), "A100", 40960, cfg.SlicesPerGPU); err != nil {
			return nil, err
		}
	}
	f.GPUAgent = gpuagent.New(conn, f.GPUs, "PCIe", "GPUPool")
	if err := f.GPUAgent.Start(); err != nil {
		return nil, err
	}

	// Composability Manager.
	f.Composer = composer.New(f.Service, cfg.Policy)
	for _, n := range f.NodeNames {
		if err := f.Composer.AddNode(n, cfg.CoresPerNode, cfg.NodeMemoryMiB); err != nil {
			return nil, err
		}
	}
	cxlFabric := f.CXLAgent.FabricID()
	f.Composer.AddMemoryPool(&composer.MemoryPool{
		Name:        "cxl-pool",
		Chunks:      f.CXLAgent.ChassisID().Append("MemoryDomains", "Domain0", "MemoryChunks"),
		Connections: cxlFabric.Append("Connections"),
		Endpoint:    func(node string) odata.ID { return cxlFabric.Append("Endpoints", node) },
		FreeMiB:     f.CXL.FreeMiB,
	})
	nvmeFabric := f.NVMeAgent.FabricID()
	f.Composer.AddStoragePool(&composer.StoragePool{
		Name:        "nvme-pool",
		Volumes:     f.NVMeAgent.StorageID().Append("Volumes"),
		Connections: nvmeFabric.Append("Connections"),
		Endpoint:    func(node string) odata.ID { return nvmeFabric.Append("Endpoints", node) },
		FreeBytes: func() int64 {
			var free int64
			for _, p := range f.NVMe.Pools() {
				free += p.CapacityBytes - p.AllocatedBytes()
			}
			return free
		},
	})
	gpuFabric := f.GPUAgent.FabricID()
	f.Composer.AddGPUPool(&composer.GPUPool{
		Name:         "gpu-pool",
		Partitions:   f.GPUAgent.ChassisID().Append("Processors"),
		Connections:  gpuFabric.Append("Connections"),
		HostEndpoint: func(node string) odata.ID { return service.SystemsURI.Append(node) },
		TargetEndpoint: func(leaf string) odata.ID {
			return gpuFabric.Append("Endpoints", leaf)
		},
		FreeSlices: f.GPUs.FreeSlices,
	})

	// Redfish-native composition: POST /redfish/v1/Systems composes,
	// DELETE of a composed system decomposes.
	f.Service.SetSystemComposer(f.Composer)

	// Rule engine.
	f.Rules = composer.NewRuleEngine()
	if cfg.OOMHotAddMiB > 0 {
		f.Rules.Add(composer.OOMRule(f.Composer, cfg.OOMHotAddMiB))
	}
	if err := f.Rules.Bind(f.Service.Bus()); err != nil {
		return nil, err
	}

	// Telemetry: free-capacity gauges for every pool.
	f.Telem = telemetry.NewService(service.TelemetryServiceURI,
		func(id odata.ID, res any) { _ = f.Service.Store().Put(id, res) },
		func(rec redfish.EventRecord) { f.Service.Bus().Publish(rec) },
	)
	mustTelem(f.Telem.DefineMetric("FreeMemoryMiB", "Gauge", "MiB"))
	mustTelem(f.Telem.DefineMetric("FreeStorageBytes", "Gauge", "By"))
	mustTelem(f.Telem.DefineMetric("FreeGPUSlices", "Gauge", "1"))
	mustTelem(f.Telem.DefineMetric("UsedCores", "Gauge", "1"))
	mustTelem(f.Telem.DefineReport("pool-utilization", 0, telemetry.CollectorFunc(func() []redfish.MetricValue {
		stats := f.Composer.Stats()
		return []redfish.MetricValue{
			telemetry.Gauge("FreeMemoryMiB", string(f.CXLAgent.ChassisID()), float64(stats.FreeMemoryMiB)),
			telemetry.Gauge("FreeStorageBytes", string(f.NVMeAgent.StorageID()), float64(stats.FreeStorageB)),
			telemetry.Gauge("FreeGPUSlices", string(f.GPUAgent.ChassisID()), float64(stats.FreeGPUSlices)),
			telemetry.Gauge("UsedCores", string(service.SystemsURI), float64(stats.UsedCores)),
		}
	})))

	// Self-telemetry: the management plane's own metrics registry feeds a
	// periodic MetricReport, so the OFMF's health is observable through the
	// same Redfish telemetry machinery as the hardware it manages.
	mustTelem(f.Telem.DefineReport("ManagementPlane", 10*time.Second,
		obsv.SelfCollector{Registry: f.Service.Metrics().Registry()}))
	if _, err := f.Telem.Generate("ManagementPlane"); err != nil {
		return nil, err
	}
	f.telemStop = make(chan struct{})
	go f.Telem.Run(f.telemStop)
	return f, nil
}

func mustTelem(err error) {
	if err != nil {
		panic(fmt.Sprintf("core: telemetry bootstrap: %v", err))
	}
}

// Handler serves the Redfish tree and the Composability Layer facade from
// one mux. The composer facade shares the service's observability
// middleware so its requests are traced and counted too.
func (f *Framework) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/redfish", f.Service.Handler())
	mux.Handle("/redfish/", f.Service.Handler())
	mux.Handle("/composer/", obsv.Middleware(f.Composer.Handler(),
		f.Service.Metrics(), f.Service.Logger(), service.RouteClass, f.Service.Tracer()))
	return mux
}

// Close stops the agents, the telemetry loop, and releases service
// resources. Safe to call more than once.
func (f *Framework) Close() {
	f.closeOnce.Do(func() {
		close(f.telemStop)
		f.CXLAgent.Stop()
		f.NVMeAgent.Stop()
		f.FabAgent.Stop()
		f.GPUAgent.Stop()
		f.Service.Close()
	})
}

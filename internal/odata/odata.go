// Package odata provides the OData v4 primitives used by the Redfish and
// Swordfish schemas: identifiers, annotation envelopes, collection payloads
// and ETag generation. Every resource served by the OFMF carries the
// @odata.id / @odata.type annotations defined here.
package odata

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path"
	"sort"
	"strings"
)

// ID is an OData resource identifier: the absolute URI path of a resource
// within the service, e.g. "/redfish/v1/Fabrics/CXL/Switches/1".
type ID string

// String returns the identifier as a plain string.
func (id ID) String() string { return string(id) }

// IsZero reports whether the identifier is empty.
func (id ID) IsZero() bool { return id == "" }

// Parent returns the identifier of the containing collection or resource.
// The parent of a top-level identifier is "/".
func (id ID) Parent() ID {
	p := path.Dir(strings.TrimRight(string(id), "/"))
	if p == "." {
		return ID("/")
	}
	return ID(p)
}

// Leaf returns the final path segment of the identifier.
func (id ID) Leaf() string { return path.Base(string(id)) }

// Append returns a child identifier under id with the given segments.
func (id ID) Append(segments ...string) ID {
	parts := append([]string{string(id)}, segments...)
	return ID(path.Join(parts...))
}

// Under reports whether id is equal to or lexically contained in prefix.
func (id ID) Under(prefix ID) bool {
	if id == prefix {
		return true
	}
	p := strings.TrimRight(string(prefix), "/") + "/"
	return strings.HasPrefix(string(id), p)
}

// Ref is the JSON shape of a reference to another resource: an object with
// a single "@odata.id" member. Redfish uses these for all links.
type Ref struct {
	ODataID ID `json:"@odata.id"`
}

// NewRef builds a reference to the given identifier.
func NewRef(id ID) Ref { return Ref{ODataID: id} }

// RefSlice converts a list of identifiers into reference objects.
func RefSlice(ids []ID) []Ref {
	refs := make([]Ref, len(ids))
	for i, id := range ids {
		refs[i] = NewRef(id)
	}
	return refs
}

// IDsOf extracts the identifiers from a list of references.
func IDsOf(refs []Ref) []ID {
	ids := make([]ID, len(refs))
	for i, r := range refs {
		ids[i] = r.ODataID
	}
	return ids
}

// Resource is the annotation envelope common to every Redfish resource.
// Concrete schema types embed it so that each serialized payload carries
// the mandatory OData annotations.
type Resource struct {
	ODataID   ID     `json:"@odata.id"`
	ODataType string `json:"@odata.type"`
	ODataEtag string `json:"@odata.etag,omitempty"`
	ID        string `json:"Id"`
	Name      string `json:"Name"`
	Desc      string `json:"Description,omitempty"`
}

// NewResource builds the annotation envelope for a resource at uri with the
// given @odata.type and display name. The Redfish "Id" property is derived
// from the final URI segment.
func NewResource(uri ID, odataType, name string) Resource {
	return Resource{
		ODataID:   uri,
		ODataType: odataType,
		ID:        uri.Leaf(),
		Name:      name,
	}
}

// Collection is the payload shape of a Redfish resource collection.
type Collection struct {
	ODataID   ID     `json:"@odata.id"`
	ODataType string `json:"@odata.type"`
	Name      string `json:"Name"`
	Count     int    `json:"Members@odata.count"`
	Members   []Ref  `json:"Members"`
}

// NewCollection builds a collection payload for the given member ids. The
// members are sorted lexically so payloads are deterministic.
func NewCollection(uri ID, odataType, name string, members []ID) Collection {
	sorted := make([]ID, len(members))
	copy(sorted, members)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return Collection{
		ODataID:   uri,
		ODataType: odataType,
		Name:      name,
		Count:     len(sorted),
		Members:   RefSlice(sorted),
	}
}

// Etag computes a strong entity tag for an arbitrary JSON-serializable
// value. The tag is stable across runs for identical content.
func Etag(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("odata: etag marshal: %w", err)
	}
	return EtagRaw(b), nil
}

// EtagRaw computes the entity tag of already-canonical JSON bytes without
// the marshal round-trip Etag performs. For bytes produced by
// json.Marshal the result is identical to Etag's; it is the hot-path
// variant the resource store uses.
func EtagRaw(raw []byte) string {
	sum := sha256.Sum256(raw)
	return `"` + hex.EncodeToString(sum[:8]) + `"`
}

// Status is the Redfish Status object reported by most resources.
type Status struct {
	State  string `json:"State,omitempty"`
	Health string `json:"Health,omitempty"`
}

// Common Status.State values.
const (
	StateEnabled      = "Enabled"
	StateDisabled     = "Disabled"
	StateAbsent       = "Absent"
	StateStandbyOff   = "StandbyOffline"
	StateStarting     = "Starting"
	StateUnavailable  = "UnavailableOffline"
	StateQualified    = "Qualified"
	StateDeferring    = "Deferring"
	StateQuiesced     = "Quiesced"
	StateUpdating     = "Updating"
	StateComposed     = "Composed"
	StateComposedAndA = "ComposedAndAvailable"
)

// Common Status.Health values.
const (
	HealthOK       = "OK"
	HealthWarning  = "Warning"
	HealthCritical = "Critical"
)

// StatusOK is the nominal healthy status.
func StatusOK() Status { return Status{State: StateEnabled, Health: HealthOK} }

// Message is a Redfish message object as carried in extended error
// payloads and event records.
type Message struct {
	MessageID   string   `json:"MessageId"`
	Message     string   `json:"Message"`
	Severity    string   `json:"Severity,omitempty"`
	Resolution  string   `json:"Resolution,omitempty"`
	MessageArgs []string `json:"MessageArgs,omitempty"`
}

// Error is the Redfish extended-error payload returned for failed requests.
type Error struct {
	Code    string    `json:"code"`
	Message string    `json:"message"`
	Info    []Message `json:"@Message.ExtendedInfo,omitempty"`
}

// ErrorEnvelope wraps Error in the top-level "error" member mandated by the
// Redfish specification.
type ErrorEnvelope struct {
	Error Error `json:"error"`
}

// NewError builds an extended-error envelope.
func NewError(code, message string, info ...Message) ErrorEnvelope {
	return ErrorEnvelope{Error: Error{Code: code, Message: message, Info: info}}
}

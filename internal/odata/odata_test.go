package odata

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestIDParent(t *testing.T) {
	cases := []struct {
		in, want ID
	}{
		{"/redfish/v1/Fabrics/CXL/Switches/1", "/redfish/v1/Fabrics/CXL/Switches"},
		{"/redfish/v1", "/redfish"},
		{"/redfish", "/"},
		{"/", "/"},
	}
	for _, c := range cases {
		if got := c.in.Parent(); got != c.want {
			t.Errorf("Parent(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestIDLeafAppend(t *testing.T) {
	id := ID("/redfish/v1/Systems")
	child := id.Append("Sys1", "Processors")
	if child != "/redfish/v1/Systems/Sys1/Processors" {
		t.Fatalf("Append = %q", child)
	}
	if child.Leaf() != "Processors" {
		t.Fatalf("Leaf = %q", child.Leaf())
	}
}

func TestIDUnder(t *testing.T) {
	cases := []struct {
		id, prefix ID
		want       bool
	}{
		{"/redfish/v1/Systems/S1", "/redfish/v1/Systems", true},
		{"/redfish/v1/Systems", "/redfish/v1/Systems", true},
		{"/redfish/v1/SystemsExtra", "/redfish/v1/Systems", false},
		{"/redfish/v1", "/redfish/v1/Systems", false},
	}
	for _, c := range cases {
		if got := c.id.Under(c.prefix); got != c.want {
			t.Errorf("Under(%q, %q) = %v, want %v", c.id, c.prefix, got, c.want)
		}
	}
}

func TestIDParentChildRoundTrip(t *testing.T) {
	// Property: for non-empty clean segments, Append then Parent is identity.
	f := func(seg uint8) bool {
		name := "n" + string(rune('a'+seg%26))
		base := ID("/redfish/v1/Chassis")
		return base.Append(name).Parent() == base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewResource(t *testing.T) {
	r := NewResource("/redfish/v1/Systems/S1", "#ComputerSystem.v1_20_0.ComputerSystem", "Node S1")
	if r.ID != "S1" {
		t.Errorf("ID = %q, want S1", r.ID)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"@odata.id":"/redfish/v1/Systems/S1"`, `"@odata.type":"#ComputerSystem.v1_20_0.ComputerSystem"`, `"Name":"Node S1"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("marshal missing %s in %s", want, b)
		}
	}
}

func TestNewCollectionSortsMembers(t *testing.T) {
	c := NewCollection("/redfish/v1/Systems", "#ComputerSystemCollection.ComputerSystemCollection",
		"Systems", []ID{"/redfish/v1/Systems/B", "/redfish/v1/Systems/A"})
	if c.Count != 2 {
		t.Fatalf("Count = %d", c.Count)
	}
	if c.Members[0].ODataID != "/redfish/v1/Systems/A" {
		t.Errorf("members not sorted: %v", c.Members)
	}
}

func TestRefSliceIDsOfRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		ids := make([]ID, n%10)
		for i := range ids {
			ids[i] = ID("/x").Append(string(rune('a' + i)))
		}
		back := IDsOf(RefSlice(ids))
		if len(back) != len(ids) {
			return false
		}
		for i := range ids {
			if back[i] != ids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEtagStable(t *testing.T) {
	type payload struct{ A, B string }
	e1, err := Etag(payload{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Etag(payload{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Errorf("etags differ for identical content: %s vs %s", e1, e2)
	}
	e3, err := Etag(payload{"x", "z"})
	if err != nil {
		t.Fatal(err)
	}
	if e1 == e3 {
		t.Error("etags equal for different content")
	}
	if !strings.HasPrefix(e1, `"`) || !strings.HasSuffix(e1, `"`) {
		t.Errorf("etag not quoted: %s", e1)
	}
}

func TestEtagRejectsUnmarshalable(t *testing.T) {
	if _, err := Etag(make(chan int)); err == nil {
		t.Error("expected error for unmarshalable value")
	}
}

func TestErrorEnvelopeShape(t *testing.T) {
	env := NewError("Base.1.0.GeneralError", "boom", Message{MessageID: "Base.1.0.Oops", Message: "oops"})
	b, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	inner, ok := m["error"].(map[string]any)
	if !ok {
		t.Fatalf("missing error member: %s", b)
	}
	if inner["code"] != "Base.1.0.GeneralError" {
		t.Errorf("code = %v", inner["code"])
	}
	if _, ok := inner["@Message.ExtendedInfo"]; !ok {
		t.Errorf("missing extended info: %s", b)
	}
}

func TestStatusOK(t *testing.T) {
	s := StatusOK()
	if s.State != StateEnabled || s.Health != HealthOK {
		t.Errorf("StatusOK = %+v", s)
	}
}

package odata_test

import (
	"fmt"

	"ofmf/internal/odata"
)

func ExampleID_Append() {
	fabrics := odata.ID("/redfish/v1/Fabrics")
	cxl := fabrics.Append("CXL", "Endpoints", "node001")
	fmt.Println(cxl)
	fmt.Println(cxl.Leaf())
	fmt.Println(cxl.Parent())
	// Output:
	// /redfish/v1/Fabrics/CXL/Endpoints/node001
	// node001
	// /redfish/v1/Fabrics/CXL/Endpoints
}

func ExampleID_Under() {
	ep := odata.ID("/redfish/v1/Fabrics/CXL/Endpoints/node001")
	fmt.Println(ep.Under("/redfish/v1/Fabrics/CXL"))
	fmt.Println(ep.Under("/redfish/v1/Systems"))
	// Output:
	// true
	// false
}

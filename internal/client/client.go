// Package client is a typed Go client for the OFMF: tree navigation over
// the Redfish REST protocol, session authentication, fabric operations,
// event subscription with a built-in callback listener, and access to the
// Composability Layer facade. It plays the role gofish plays for generic
// Redfish services, specialized for the OFMF's composable-HPC surface.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"ofmf/internal/composer"
	"ofmf/internal/obsv"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/resilience"
	"ofmf/internal/service"
)

// HTTPError carries a non-2xx response.
type HTTPError struct {
	StatusCode int
	Body       string
}

// Error renders the failure.
func (e *HTTPError) Error() string {
	return fmt.Sprintf("client: HTTP %d: %s", e.StatusCode, e.Body)
}

// IsNotFound reports whether err is an HTTP 404.
func IsNotFound(err error) bool {
	var he *HTTPError
	return errors.As(err, &he) && he.StatusCode == http.StatusNotFound
}

// maxResponseBytes bounds response bodies read into memory.
const maxResponseBytes = 8 << 20

// Client talks to one OFMF deployment.
type Client struct {
	// BaseURL is the service base, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP overrides the transport. By default requests go through a
	// resilience.Transport: per-attempt timeouts, retries with backoff for
	// idempotent methods, and a circuit breaker per service host.
	HTTP *http.Client

	mu    sync.Mutex
	token string
}

// New creates a client for the given base URL.
func New(baseURL string) *Client { return &Client{BaseURL: baseURL} }

// defaultHTTPClient is shared across Clients so breaker state follows the
// peer, not the Client instance.
var defaultHTTPClient = sync.OnceValue(func() *http.Client {
	return resilience.NewHTTPClient(resilience.DefaultPolicy())
})

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTPClient()
}

// Token returns the session token, if logged in.
func (c *Client) Token() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.token
}

func (c *Client) do(method, path string, body, out any) (*http.Response, error) {
	return c.doCtx(context.Background(), method, path, body, out)
}

func (c *Client) doCtx(ctx context.Context, method, path string, body, out any) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, fmt.Errorf("client: marshal: %w", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Join any distributed trace the caller is part of: traceparent and
	// X-Request-Id from ctx ride along so the server's middleware links
	// its spans under the caller's.
	obsv.InjectHeaders(ctx, req.Header)
	if tok := c.Token(); tok != "" {
		req.Header.Set("X-Auth-Token", tok)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxResponseBytes {
		return resp, fmt.Errorf("client: response for %s exceeds %d bytes", path, maxResponseBytes)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return resp, &HTTPError{StatusCode: resp.StatusCode, Body: string(bytes.TrimSpace(data))}
	}
	if out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp, fmt.Errorf("client: decode %s: %w", path, err)
		}
	}
	return resp, nil
}

// Login opens a session and stores the token for subsequent requests.
func (c *Client) Login(user, password string) error {
	resp, err := c.do(http.MethodPost, string(service.SessionsURI),
		map[string]string{"UserName": user, "Password": password}, nil)
	if err != nil {
		return err
	}
	tok := resp.Header.Get("X-Auth-Token")
	if tok == "" {
		return errors.New("client: no token in login response")
	}
	c.mu.Lock()
	c.token = tok
	c.mu.Unlock()
	return nil
}

// Get decodes the resource at path into out.
func (c *Client) Get(path odata.ID, out any) error {
	_, err := c.do(http.MethodGet, string(path), nil, out)
	return err
}

// GetCtx is Get with cancellation and trace propagation via ctx.
func (c *Client) GetCtx(ctx context.Context, path odata.ID, out any) error {
	_, err := c.doCtx(ctx, http.MethodGet, string(path), nil, out)
	return err
}

// Root fetches the service root.
func (c *Client) Root() (redfish.Root, error) {
	var root redfish.Root
	err := c.Get(service.RootURI, &root)
	return root, err
}

// Members lists a collection's member ids, transparently following
// Members@odata.nextLink continuations when the server pages.
func (c *Client) Members(coll odata.ID) ([]odata.ID, error) {
	type page struct {
		Members  []odata.Ref `json:"Members"`
		NextLink string      `json:"Members@odata.nextLink"`
	}
	var out []odata.ID
	next := string(coll)
	for next != "" {
		var p page
		if _, err := c.do(http.MethodGet, next, nil, &p); err != nil {
			return nil, err
		}
		out = append(out, odata.IDsOf(p.Members)...)
		next = p.NextLink
	}
	return out, nil
}

// Systems fetches every computer system.
func (c *Client) Systems() ([]redfish.ComputerSystem, error) {
	return fetchAll[redfish.ComputerSystem](c, service.SystemsURI)
}

// Fabrics fetches every fabric.
func (c *Client) Fabrics() ([]redfish.Fabric, error) {
	return fetchAll[redfish.Fabric](c, service.FabricsURI)
}

// Endpoints fetches a fabric's endpoints.
func (c *Client) Endpoints(fabric odata.ID) ([]redfish.Endpoint, error) {
	return fetchAll[redfish.Endpoint](c, fabric.Append("Endpoints"))
}

// Connections fetches a fabric's connections.
func (c *Client) Connections(fabric odata.ID) ([]redfish.Connection, error) {
	return fetchAll[redfish.Connection](c, fabric.Append("Connections"))
}

func fetchAll[T any](c *Client, coll odata.ID) ([]T, error) {
	ids, err := c.Members(coll)
	if err != nil {
		return nil, err
	}
	out := make([]T, 0, len(ids))
	for _, id := range ids {
		var v T
		if err := c.Get(id, &v); err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// PostJSON issues a generic POST (used for provisioning collections such
// as Volumes, MemoryChunks and Processors) and returns the HTTP status.
func (c *Client) PostJSON(path string, body, out any) (int, error) {
	resp, err := c.do(http.MethodPost, path, body, out)
	status := 0
	if resp != nil {
		status = resp.StatusCode
	}
	return status, err
}

// CreateConnection posts a connection into the fabric's collection.
func (c *Client) CreateConnection(fabric odata.ID, conn redfish.Connection) (redfish.Connection, error) {
	var created redfish.Connection
	_, err := c.do(http.MethodPost, string(fabric.Append("Connections")), conn, &created)
	return created, err
}

// CreateZone posts a zone into the fabric's collection.
func (c *Client) CreateZone(fabric odata.ID, zone redfish.Zone) (redfish.Zone, error) {
	var created redfish.Zone
	_, err := c.do(http.MethodPost, string(fabric.Append("Zones")), zone, &created)
	return created, err
}

// Delete removes the resource at path.
func (c *Client) Delete(path odata.ID) error {
	_, err := c.do(http.MethodDelete, string(path), nil, nil)
	return err
}

// Patch applies a property patch to the resource at path.
func (c *Client) Patch(path odata.ID, patch map[string]any) error {
	_, err := c.do(http.MethodPatch, string(path), patch, nil)
	return err
}

// PatchCtx is Patch with cancellation and trace propagation via ctx.
func (c *Client) PatchCtx(ctx context.Context, path odata.ID, patch map[string]any) error {
	_, err := c.doCtx(ctx, http.MethodPatch, string(path), patch, nil)
	return err
}

// ExportTree downloads the whole resource tree as portable JSON from the
// admin backup endpoint. The format is the store's Export format,
// independent of any on-disk WAL layout, so dumps restore across
// deployments and versions.
func (c *Client) ExportTree() ([]byte, error) {
	var dump json.RawMessage
	if _, err := c.do(http.MethodGet, string(service.AdminTreeOemURI), nil, &dump); err != nil {
		return nil, err
	}
	return dump, nil
}

// ImportTree uploads a tree dump (as produced by ExportTree) to the admin
// backup endpoint. Restore has replace semantics: the live tree is
// atomically replaced by the dumped one, and resources absent from the
// dump are removed. A dump that fails validation leaves the store
// untouched.
func (c *Client) ImportTree(dump []byte) error {
	_, err := c.do(http.MethodPost, string(service.AdminTreeOemURI), json.RawMessage(dump), nil)
	return err
}

// WaitTask polls a Redfish task monitor until the task reaches a terminal
// state or the timeout elapses, returning the final task resource.
func (c *Client) WaitTask(monitor odata.ID, timeout time.Duration) (redfish.Task, error) {
	deadline := time.Now().Add(timeout)
	for {
		var task redfish.Task
		if err := c.Get(monitor, &task); err != nil {
			return task, err
		}
		switch task.TaskState {
		case redfish.TaskCompleted, redfish.TaskException, redfish.TaskCancelled:
			return task, nil
		}
		if time.Now().After(deadline) {
			return task, fmt.Errorf("client: task %s still %s after %v", monitor, task.TaskState, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ComposeAsync submits a composition request to the Composability Layer's
// asynchronous endpoint and returns the Redfish task monitor URI.
func (c *Client) ComposeAsync(req composer.Request) (odata.ID, error) {
	resp, err := c.do(http.MethodPost, "/composer/v1/ComposeAsync", req, nil)
	if err != nil {
		return "", err
	}
	monitor := odata.ID(resp.Header.Get("Location"))
	if monitor.IsZero() {
		return "", errors.New("client: no task monitor in response")
	}
	return monitor, nil
}

// Compose submits a composition request to the Composability Layer.
func (c *Client) Compose(req composer.Request) (composer.Composition, error) {
	return c.ComposeCtx(context.Background(), req)
}

// ComposeCtx is Compose with cancellation and trace propagation via ctx.
func (c *Client) ComposeCtx(ctx context.Context, req composer.Request) (composer.Composition, error) {
	var comp composer.Composition
	_, err := c.doCtx(ctx, http.MethodPost, "/composer/v1/Compose", req, &comp)
	return comp, err
}

// Decompose tears a composition down.
func (c *Client) Decompose(id string) error {
	return c.DecomposeCtx(context.Background(), id)
}

// DecomposeCtx is Decompose with cancellation and trace propagation via
// ctx.
func (c *Client) DecomposeCtx(ctx context.Context, id string) error {
	_, err := c.doCtx(ctx, http.MethodDelete, "/composer/v1/Compositions/"+id, nil, nil)
	return err
}

// Compositions lists live compositions.
func (c *Client) Compositions() ([]composer.Composition, error) {
	var out []composer.Composition
	_, err := c.do(http.MethodGet, "/composer/v1/Compositions", nil, &out)
	return out, err
}

// ComposerStats fetches utilization counters.
func (c *Client) ComposerStats() (composer.Stats, error) {
	var out composer.Stats
	_, err := c.do(http.MethodGet, "/composer/v1/Stats", nil, &out)
	return out, err
}

// EventListener is a local HTTP endpoint receiving subscribed events.
type EventListener struct {
	URL string

	subURI odata.ID
	client *Client
	srv    *http.Server
	lis    net.Listener
	done   chan struct{}
}

// SubscribeEvents starts a local listener, registers it as an event
// destination with the given filter, and invokes handler for every
// delivered event. Close the listener to unsubscribe.
func (c *Client) SubscribeEvents(dest redfish.EventDestination, handler func(redfish.Event)) (*EventListener, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("client: listen: %w", err)
	}
	el := &EventListener{
		URL:    "http://" + lis.Addr().String(),
		client: c,
		lis:    lis,
		done:   make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		var ev redfish.Event
		if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		handler(ev)
		w.WriteHeader(http.StatusNoContent)
	})
	el.srv = &http.Server{Handler: mux}
	go func() {
		defer close(el.done)
		_ = el.srv.Serve(lis)
	}()

	dest.Destination = el.URL
	var created redfish.EventDestination
	if _, err := c.do(http.MethodPost, string(service.SubscriptionsURI), dest, &created); err != nil {
		_ = el.srv.Close()
		<-el.done
		return nil, err
	}
	el.subURI = created.ODataID
	return el, nil
}

// Close unsubscribes and stops the listener.
func (el *EventListener) Close() error {
	var first error
	if !el.subURI.IsZero() {
		if err := el.client.Delete(el.subURI); err != nil && !IsNotFound(err) {
			first = err
		}
	}
	if err := el.srv.Close(); err != nil && first == nil {
		first = err
	}
	<-el.done
	return first
}

package client_test

import (
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ofmf/internal/client"
	"ofmf/internal/composer"
	"ofmf/internal/core"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
	"ofmf/internal/sessions"
)

func newTestbed(t *testing.T, cfg core.Config) (*core.Framework, *client.Client) {
	t.Helper()
	f, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(f.Handler())
	t.Cleanup(func() {
		srv.Close()
		f.Close()
	})
	return f, client.New(srv.URL)
}

func TestRootAndNavigation(t *testing.T) {
	_, c := newTestbed(t, core.Config{Nodes: 2})
	root, err := c.Root()
	if err != nil {
		t.Fatal(err)
	}
	if root.RedfishVersion == "" || root.Fabrics == nil {
		t.Fatalf("root = %+v", root)
	}
	fabrics, err := c.Fabrics()
	if err != nil {
		t.Fatal(err)
	}
	if len(fabrics) != 4 { // CXL, NVMe, HPC, PCIe
		t.Errorf("fabrics = %d", len(fabrics))
	}
	systems, err := c.Systems()
	if err != nil {
		t.Fatal(err)
	}
	if len(systems) != 2 {
		t.Errorf("systems = %d", len(systems))
	}
	eps, err := c.Endpoints(fabrics[0].ODataID)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) == 0 {
		t.Error("no endpoints")
	}
}

func TestMembersFollowsPaging(t *testing.T) {
	f, c := newTestbed(t, core.Config{Nodes: 5})
	all, err := c.Members(service.SystemsURI)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Fatalf("members = %d", len(all))
	}
	// A paged fetch through the raw URL yields the same set.
	paged, err := c.Members(service.SystemsURI + "?$top=2")
	if err != nil {
		t.Fatal(err)
	}
	if len(paged) != 5 {
		t.Errorf("paged members = %d, want 5 via nextLink chain", len(paged))
	}
	_ = f
}

func TestNotFoundError(t *testing.T) {
	_, c := newTestbed(t, core.Config{Nodes: 1})
	var out map[string]any
	err := c.Get("/redfish/v1/Systems/ghost", &out)
	if !client.IsNotFound(err) {
		t.Errorf("err = %v", err)
	}
	var he *client.HTTPError
	if !errors.As(err, &he) || he.StatusCode != 404 {
		t.Errorf("err = %v", err)
	}
}

func TestLoginFlow(t *testing.T) {
	f, err := core.New(core.Config{
		Nodes:   1,
		Service: service.Config{Credentials: sessions.StaticCredentials(map[string]string{"ops": "pw"})},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	defer f.Close()

	c := client.New(srv.URL)
	if _, err := c.Systems(); err == nil {
		t.Fatal("unauthenticated request succeeded")
	}
	if err := c.Login("ops", "bad"); err == nil {
		t.Fatal("bad login succeeded")
	}
	if err := c.Login("ops", "pw"); err != nil {
		t.Fatal(err)
	}
	if c.Token() == "" {
		t.Fatal("no token stored")
	}
	if _, err := c.Systems(); err != nil {
		t.Fatalf("authenticated request failed: %v", err)
	}
}

func TestComposeViaClient(t *testing.T) {
	f, c := newTestbed(t, core.Config{Nodes: 2})
	comp, err := c.Compose(composer.Request{Cores: 8, FabricMemoryMiB: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if comp.ID == "" {
		t.Fatalf("composition = %+v", comp)
	}
	list, err := c.Compositions()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 {
		t.Errorf("compositions = %d", len(list))
	}
	stats, err := c.ComposerStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.UsedCores != 8 {
		t.Errorf("stats = %+v", stats)
	}
	if err := c.Decompose(comp.ID); err != nil {
		t.Fatal(err)
	}
	if f.CXL.FreeMiB() != 4*256*1024 {
		t.Errorf("cxl free = %d", f.CXL.FreeMiB())
	}
}

func TestPortPatchViaClient(t *testing.T) {
	f, c := newTestbed(t, core.Config{Nodes: 4})
	fabric := f.FabAgent.FabricID()
	port := fabric.Append("Switches", "leaf0", "Ports", "spine0")
	if err := c.Patch(port, map[string]any{"LinkState": "Disabled"}); err != nil {
		t.Fatal(err)
	}
	l, err := f.Fabric.Link("leaf0", "spine0")
	if err != nil {
		t.Fatal(err)
	}
	if l.Up() {
		t.Error("link still up")
	}
	if err := c.Patch(port, map[string]any{"LinkState": "Enabled"}); err != nil {
		t.Fatal(err)
	}
}

func TestSubscribeEventsEndToEnd(t *testing.T) {
	_, c := newTestbed(t, core.Config{Nodes: 1})
	var mu sync.Mutex
	var events []redfish.Event
	el, err := c.SubscribeEvents(redfish.EventDestination{
		EventTypes: []string{redfish.EventResourceAdded},
		Context:    "client-test",
	}, func(ev redfish.Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer el.Close()

	// Composition adds resources → ResourceAdded events reach the client.
	if _, err := c.Compose(composer.Request{Cores: 4, FabricMemoryMiB: 1024}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(events)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no events delivered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	ev := events[0]
	mu.Unlock()
	if ev.Context != "client-test" {
		t.Errorf("context = %q", ev.Context)
	}
	if err := el.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

func TestZoneAndConnectionViaClient(t *testing.T) {
	f, c := newTestbed(t, core.Config{Nodes: 4})
	fabric := f.FabAgent.FabricID()
	eps, err := c.Endpoints(fabric)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) < 2 {
		t.Fatalf("endpoints = %d", len(eps))
	}
	zone, err := c.CreateZone(fabric, redfish.Zone{
		Links: redfish.ZoneLinks{Endpoints: []odata.Ref{
			odata.NewRef(eps[0].ODataID), odata.NewRef(eps[1].ODataID),
		}},
	})
	if err != nil {
		t.Fatalf("zone: %v", err)
	}
	if len(f.Fabric.Zones()) != 1 {
		t.Errorf("fabric zones = %d", len(f.Fabric.Zones()))
	}

	conn, err := c.CreateConnection(fabric, redfish.Connection{
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{odata.NewRef(eps[0].ODataID)},
			TargetEndpoints:    []odata.Ref{odata.NewRef(eps[1].ODataID)},
		},
	})
	if err != nil {
		t.Fatalf("connection: %v", err)
	}
	if len(f.Fabric.Flows()) != 1 {
		t.Errorf("flows = %d", len(f.Fabric.Flows()))
	}
	if err := c.Delete(conn.ODataID); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(zone.ODataID); err != nil {
		t.Fatal(err)
	}
	if len(f.Fabric.Flows()) != 0 || len(f.Fabric.Zones()) != 0 {
		t.Errorf("fabric not cleaned: flows=%d zones=%d", len(f.Fabric.Flows()), len(f.Fabric.Zones()))
	}
}

func TestComposeAsyncViaClient(t *testing.T) {
	f, c := newTestbed(t, core.Config{Nodes: 2})
	monitor, err := c.ComposeAsync(composer.Request{Name: "async-client", Cores: 4, FabricMemoryMiB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	task, err := c.WaitTask(monitor, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if task.TaskState != redfish.TaskCompleted {
		t.Fatalf("task = %+v", task)
	}
	comps, err := c.Compositions()
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 1 {
		t.Errorf("compositions = %d", len(comps))
	}
	_ = f
}

package cxlagent

import (
	"context"
	"encoding/json"
	"errors"
	"strconv"
	"testing"

	"ofmf/internal/agent"
	"ofmf/internal/emul/cxlsim"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
)

func newAgent(t *testing.T) (*service.Service, *cxlsim.Appliance, *Agent) {
	t.Helper()
	svc := service.New(service.Config{DirectWrites: true})
	t.Cleanup(svc.Close)
	app := cxlsim.New(cxlsim.WithoutSleep())
	if err := app.AddDevice("dev0", 4096, "DRAM"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"hostA", "hostB"} {
		if err := app.AddPort(p); err != nil {
			t.Fatal(err)
		}
	}
	ag := New(&agent.Local{Service: svc}, app, "CXL", "MemApp")
	for uri, meta := range ag.Collections() {
		svc.Store().RegisterCollection(uri, meta[0], meta[1])
	}
	if err := ag.Start(); err != nil {
		t.Fatal(err)
	}
	return svc, app, ag
}

func carve(t *testing.T, svc *service.Service, ag *Agent, sizeMiB int) odata.ID {
	t.Helper()
	payload := json.RawMessage([]byte(`{"MemoryChunkSizeMiB": ` + strconv.Itoa(sizeMiB) + `}`))
	uri, err := svc.ProvisionResource(context.Background(), ag.ChassisID().Append("MemoryDomains", "Domain0", "MemoryChunks"), payload)
	if err != nil {
		t.Fatal(err)
	}
	return uri
}

func TestPublishContents(t *testing.T) {
	svc, _, ag := newAgent(t)
	st := svc.Store()
	// Fabric root, switch, host endpoints, device endpoint, memory device,
	// memory domain all present.
	for _, id := range []odata.ID{
		ag.FabricID(),
		ag.FabricID().Append("Switches", "Switch0"),
		ag.FabricID().Append("Switches", "Switch0", "Ports", "hostA"),
		ag.FabricID().Append("Endpoints", "hostA"),
		ag.FabricID().Append("Endpoints", "dev0"),
		ag.ChassisID(),
		ag.ChassisID().Append("Memory", "dev0"),
		ag.ChassisID().Append("MemoryDomains", "Domain0"),
	} {
		if !st.Exists(id) {
			t.Errorf("missing %s", id)
		}
	}
	var mem redfish.Memory
	if err := st.GetAs(ag.ChassisID().Append("Memory", "dev0"), &mem); err != nil {
		t.Fatal(err)
	}
	if mem.CapacityMiB != 4096 || mem.AllocatedMiB != 0 {
		t.Errorf("memory = %+v", mem)
	}
}

func TestPublishReflectsAllocation(t *testing.T) {
	svc, _, ag := newAgent(t)
	carve(t, svc, ag, 1024)
	var mem redfish.Memory
	if err := svc.Store().GetAs(ag.ChassisID().Append("Memory", "dev0"), &mem); err != nil {
		t.Fatal(err)
	}
	if mem.AllocatedMiB != 1024 {
		t.Errorf("allocated = %d", mem.AllocatedMiB)
	}
}

func TestCreateConnectionValidation(t *testing.T) {
	svc, _, ag := newAgent(t)
	// No initiators / no chunk info.
	if err := ag.CreateConnection(&redfish.Connection{}); !errors.Is(err, ErrBadConnection) {
		t.Errorf("err = %v", err)
	}
	// Unknown chunk reference.
	err := ag.CreateConnection(&redfish.Connection{
		MemoryChunkInfo: []redfish.MemoryChunkInfo{{MemoryChunk: redfish.Ref("/redfish/v1/ghost")}},
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{odata.NewRef(ag.FabricID().Append("Endpoints", "hostA"))},
		},
	})
	if !errors.Is(err, ErrUnknownChunk) {
		t.Errorf("err = %v", err)
	}
	// Unknown endpoint.
	chunk := carve(t, svc, ag, 256)
	err = ag.CreateConnection(&redfish.Connection{
		MemoryChunkInfo: []redfish.MemoryChunkInfo{{MemoryChunk: redfish.Ref(chunk)}},
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{odata.NewRef(ag.FabricID().Append("Endpoints", "ghost"))},
		},
	})
	if !errors.Is(err, ErrUnknownEndpoint) {
		t.Errorf("err = %v", err)
	}
}

func TestCreateConnectionRollbackOnHeadLimit(t *testing.T) {
	svc, app, ag := newAgent(t)
	chunk := carve(t, svc, ag, 256) // MaxHeads defaults to 1
	conn := redfish.Connection{
		Resource:        odata.NewResource(ag.FabricID().Append("Connections", "X"), redfish.TypeConnection, "X"),
		MemoryChunkInfo: []redfish.MemoryChunkInfo{{MemoryChunk: redfish.Ref(chunk)}},
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{
				odata.NewRef(ag.FabricID().Append("Endpoints", "hostA")),
				odata.NewRef(ag.FabricID().Append("Endpoints", "hostB")), // exceeds heads
			},
		},
	}
	if err := ag.CreateConnection(&conn); err == nil {
		t.Fatal("two-headed bind on single-head chunk accepted")
	}
	// Rollback: nothing left bound.
	for _, c := range app.Chunks() {
		if len(c.BoundPorts()) != 0 {
			t.Errorf("leaked binding: %v", c.BoundPorts())
		}
	}
}

func TestDeleteConnectionUnknown(t *testing.T) {
	_, _, ag := newAgent(t)
	if err := ag.DeleteConnection("/redfish/v1/Fabrics/CXL/Connections/99"); err == nil {
		t.Error("unknown connection accepted")
	}
}

func TestProvisionValidation(t *testing.T) {
	_, _, ag := newAgent(t)
	// Wrong collection.
	if _, err := ag.CreateResource("/redfish/v1/Chassis/MemApp/Memory", "/x", []byte(`{}`)); !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v", err)
	}
	chunks := ag.ChassisID().Append("MemoryDomains", "Domain0", "MemoryChunks")
	// Zero size.
	if _, err := ag.CreateResource(chunks, chunks.Append("1"), []byte(`{"MemoryChunkSizeMiB":0}`)); err == nil {
		t.Error("zero-size chunk accepted")
	}
	// Malformed payload.
	if _, err := ag.CreateResource(chunks, chunks.Append("1"), []byte(`{`)); err == nil {
		t.Error("malformed payload accepted")
	}
	// Over capacity.
	if _, err := ag.CreateResource(chunks, chunks.Append("1"), []byte(`{"MemoryChunkSizeMiB":999999}`)); err == nil {
		t.Error("oversized chunk accepted")
	}
	// Delete unknown.
	if err := ag.DeleteResource(chunks.Append("77")); !errors.Is(err, ErrUnknownChunk) {
		t.Errorf("err = %v", err)
	}
}

func TestExplicitDeviceSelection(t *testing.T) {
	svc, app, ag := newAgent(t)
	if err := app.AddDevice("dev1", 8192, "DRAM"); err != nil {
		t.Fatal(err)
	}
	if err := ag.Publish(); err != nil {
		t.Fatal(err)
	}
	chunks := ag.ChassisID().Append("MemoryDomains", "Domain0", "MemoryChunks")
	uri, err := svc.ProvisionResource(context.Background(), chunks, []byte(`{"MemoryChunkSizeMiB":512,"Oem":{"OFMF":{"Device":"dev0"}}}`))
	if err != nil {
		t.Fatal(err)
	}
	_ = uri
	for _, d := range app.Devices() {
		switch d.ID {
		case "dev0":
			if d.AllocatedMiB() != 512 {
				t.Errorf("dev0 allocated = %d", d.AllocatedMiB())
			}
		case "dev1":
			if d.AllocatedMiB() != 0 {
				t.Errorf("dev1 allocated = %d", d.AllocatedMiB())
			}
		}
	}
}

func TestZoneBookkeeping(t *testing.T) {
	_, _, ag := newAgent(t)
	zone := redfish.Zone{Resource: odata.NewResource(ag.FabricID().Append("Zones", "1"), redfish.TypeZone, "z")}
	if err := ag.CreateZone(&zone); err != nil {
		t.Fatal(err)
	}
	if err := ag.DeleteZone(zone.ODataID); err != nil {
		t.Fatal(err)
	}
	if err := ag.DeleteZone(zone.ODataID); err == nil {
		t.Error("double delete accepted")
	}
}

func TestPatchUnsupported(t *testing.T) {
	_, _, ag := newAgent(t)
	if err := ag.Patch(ag.FabricID().Append("Endpoints", "hostA"), map[string]any{"Name": "x"}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v", err)
	}
}

func TestHardwareEventsForwarded(t *testing.T) {
	svc, app, ag := newAgent(t)
	_ = ag
	recs := make(chan redfish.EventRecord, 16)
	svc.Store() // ensure wired
	// Listen directly on the bus via a synchronous subscription substitute:
	// drive the appliance and check the bus counters instead.
	before := svc.Bus().Stats().Published
	id, err := app.Carve("dev0", 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = app.Bind(id, "hostA")
	close(recs)
	after := svc.Bus().Stats().Published
	if after <= before {
		t.Errorf("no events published: %d -> %d", before, after)
	}
}

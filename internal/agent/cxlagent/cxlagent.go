// Package cxlagent implements the OFMF Agent for CXL fabric-attached
// memory. It publishes a CXL fabric subtree (switch, ports, endpoints,
// zones, connections) and a memory-appliance chassis subtree (memory
// devices, a memory domain, carved memory chunks) into the OFMF tree, and
// translates forwarded OFMF operations into cxlsim appliance operations:
// a Connection binds a memory chunk to a host port; a MemoryChunks POST
// carves capacity.
package cxlagent

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"ofmf/internal/agent"
	"ofmf/internal/emul/cxlsim"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
)

// Sentinel errors.
var (
	ErrUnknownEndpoint = errors.New("cxlagent: unknown endpoint")
	ErrUnknownChunk    = errors.New("cxlagent: unknown memory chunk")
	ErrBadConnection   = errors.New("cxlagent: connection must name one initiator endpoint and one memory chunk")
	ErrUnsupported     = errors.New("cxlagent: unsupported operation")
)

// Agent is the CXL fabric agent.
type Agent struct {
	conn      agent.Conn
	appliance *cxlsim.Appliance

	fabricID  odata.ID
	chassisID odata.ID
	domainID  odata.ID

	// pubMu serializes Publish so a stale hardware snapshot can never
	// overwrite a newer one in the OFMF store (which would delete freshly
	// provisioned resources and let their URIs be reused).
	pubMu sync.Mutex

	mu sync.Mutex
	// chunkByURI maps MemoryChunks resource URIs to appliance chunk ids.
	chunkByURI map[odata.ID]string
	// bindings maps Connection URIs to the (chunk, port) pairs they bound.
	bindings map[odata.ID][]binding
	// zones records zones created through the OFMF.
	zones map[odata.ID][]odata.ID
	// eventSeq numbers forwarded hardware events.
	eventSeq  int
	sourceURI odata.ID
}

type binding struct {
	chunk string
	port  string
}

// New creates a CXL agent for the given appliance. fabricName and
// chassisName choose the subtree leaf names (e.g. "CXL",
// "CXLMemoryAppliance").
func New(conn agent.Conn, appliance *cxlsim.Appliance, fabricName, chassisName string) *Agent {
	a := &Agent{
		conn:       conn,
		appliance:  appliance,
		fabricID:   service.FabricsURI.Append(fabricName),
		chassisID:  service.ChassisURI.Append(chassisName),
		chunkByURI: make(map[odata.ID]string),
		bindings:   make(map[odata.ID][]binding),
		zones:      make(map[odata.ID][]odata.ID),
	}
	a.domainID = a.chassisID.Append("MemoryDomains", "Domain0")
	return a
}

// FabricID returns the fabric subtree root the agent owns.
func (a *Agent) FabricID() odata.ID { return a.fabricID }

// SourceURI returns the AggregationSource resource created at Start,
// used for heartbeat refreshes.
func (a *Agent) SourceURI() odata.ID {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sourceURI
}

// ChassisID returns the chassis subtree root the agent owns.
func (a *Agent) ChassisID() odata.ID { return a.chassisID }

// Start registers the agent with the OFMF, attaches its fabric handler
// for both subtrees, and publishes the initial resource state.
func (a *Agent) Start() error {
	uri, err := a.conn.Register(redfish.AggregationSource{
		Resource: odata.Resource{Name: "CXL Agent (" + a.fabricID.Leaf() + ")"},
		Oem:      redfish.AggSourceOem{OFMF: &redfish.AgentDescriptor{Technology: redfish.ProtocolCXL, Version: "1.0"}},
		Links: redfish.AggSourceLinks{ResourcesAccessed: []odata.Ref{
			odata.NewRef(a.fabricID), odata.NewRef(a.chassisID),
		}},
	})
	if err != nil {
		return fmt.Errorf("cxlagent: register: %w", err)
	}
	a.mu.Lock()
	a.sourceURI = uri
	a.mu.Unlock()
	if err := a.conn.RegisterCollections(a.Collections()); err != nil {
		return fmt.Errorf("cxlagent: register collections: %w", err)
	}
	if err := a.conn.AttachHandler(a); err != nil {
		return fmt.Errorf("cxlagent: attach fabric handler: %w", err)
	}
	if err := a.conn.AttachHandler(&subHandler{agent: a, prefix: a.chassisID}); err != nil {
		return fmt.Errorf("cxlagent: attach chassis handler: %w", err)
	}
	a.appliance.Subscribe(a.onHardwareEvent)
	return a.Publish()
}

// Stop detaches the agent's handlers.
func (a *Agent) Stop() {
	a.conn.DetachHandler(a.fabricID)
	a.conn.DetachHandler(a.chassisID)
}

// subHandler exposes the chassis subtree under a second prefix while
// delegating every operation to the owning agent.
type subHandler struct {
	agent  *Agent
	prefix odata.ID
}

func (s *subHandler) FabricID() odata.ID { return s.prefix }
func (s *subHandler) CreateConnection(c *redfish.Connection) error {
	return s.agent.CreateConnection(c)
}
func (s *subHandler) DeleteConnection(id odata.ID) error { return s.agent.DeleteConnection(id) }
func (s *subHandler) CreateZone(z *redfish.Zone) error   { return s.agent.CreateZone(z) }
func (s *subHandler) DeleteZone(id odata.ID) error       { return s.agent.DeleteZone(id) }
func (s *subHandler) Patch(id odata.ID, p map[string]any) error {
	return s.agent.Patch(id, p)
}
func (s *subHandler) CreateResource(coll, uri odata.ID, payload json.RawMessage) (any, error) {
	return s.agent.CreateResource(coll, uri, payload)
}
func (s *subHandler) DeleteResource(id odata.ID) error { return s.agent.DeleteResource(id) }

func (a *Agent) onHardwareEvent(ev cxlsim.Event) {
	a.mu.Lock()
	a.eventSeq++
	id := fmt.Sprintf("cxl-%d", a.eventSeq)
	a.mu.Unlock()
	rec := redfish.EventRecord{
		EventType: redfish.EventAlert,
		EventID:   id,
		Message:   fmt.Sprintf("cxl appliance: %s chunk=%s port=%s", ev.Kind, ev.Chunk, ev.Port),
		MessageID: "OFMF.1.0.CXL" + ev.Kind,
		Severity:  "OK",
	}
	a.conn.PublishEvent(rec)
}

// endpoint URIs: host ports and memory devices each get an endpoint.
func (a *Agent) hostEndpointURI(port string) odata.ID {
	return a.fabricID.Append("Endpoints", port)
}

func (a *Agent) deviceEndpointURI(dev string) odata.ID {
	return a.fabricID.Append("Endpoints", dev)
}

// portFromEndpoint maps an initiator endpoint URI back to an appliance
// port id.
func (a *Agent) portFromEndpoint(ep odata.ID) (string, error) {
	if ep.Parent() != a.fabricID.Append("Endpoints") {
		return "", fmt.Errorf("%w: %s", ErrUnknownEndpoint, ep)
	}
	leaf := ep.Leaf()
	for _, p := range a.appliance.Ports() {
		if p == leaf {
			return p, nil
		}
	}
	return "", fmt.Errorf("%w: %s", ErrUnknownEndpoint, ep)
}

// CreateConnection binds the referenced memory chunk to the initiator
// endpoint's port.
func (a *Agent) CreateConnection(conn *redfish.Connection) error {
	if len(conn.Links.InitiatorEndpoints) == 0 || len(conn.MemoryChunkInfo) == 0 {
		return ErrBadConnection
	}
	var binds []binding
	undo := func() {
		for _, b := range binds {
			_ = a.appliance.Unbind(b.chunk, b.port)
		}
	}
	for _, info := range conn.MemoryChunkInfo {
		if info.MemoryChunk == nil {
			undo()
			return ErrBadConnection
		}
		a.mu.Lock()
		chunk, ok := a.chunkByURI[info.MemoryChunk.ODataID]
		a.mu.Unlock()
		if !ok {
			undo()
			return fmt.Errorf("%w: %s", ErrUnknownChunk, info.MemoryChunk.ODataID)
		}
		for _, ini := range conn.Links.InitiatorEndpoints {
			port, err := a.portFromEndpoint(ini.ODataID)
			if err != nil {
				undo()
				return err
			}
			if err := a.appliance.Bind(chunk, port); err != nil {
				undo()
				return fmt.Errorf("cxlagent: bind %s to %s: %w", chunk, port, err)
			}
			binds = append(binds, binding{chunk: chunk, port: port})
		}
	}
	conn.ConnectionType = "Memory"
	a.mu.Lock()
	a.bindings[conn.ODataID] = binds
	a.mu.Unlock()
	return a.Publish()
}

// DeleteConnection unbinds everything the connection bound.
func (a *Agent) DeleteConnection(id odata.ID) error {
	a.mu.Lock()
	binds, ok := a.bindings[id]
	delete(a.bindings, id)
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("cxlagent: unknown connection %s", id)
	}
	var firstErr error
	for _, b := range binds {
		if err := a.appliance.Unbind(b.chunk, b.port); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return a.Publish()
}

// CreateZone records the zone; CXL zoning is realized through bindings, so
// no hardware action is required beyond bookkeeping.
func (a *Agent) CreateZone(zone *redfish.Zone) error {
	a.mu.Lock()
	a.zones[zone.ODataID] = odata.IDsOf(zone.Links.Endpoints)
	a.mu.Unlock()
	return nil
}

// DeleteZone forgets the zone.
func (a *Agent) DeleteZone(id odata.ID) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.zones[id]; !ok {
		return fmt.Errorf("cxlagent: unknown zone %s", id)
	}
	delete(a.zones, id)
	return nil
}

// Patch rejects hardware property changes the appliance cannot make.
func (a *Agent) Patch(id odata.ID, patch map[string]any) error {
	return fmt.Errorf("%w: PATCH %s", ErrUnsupported, id)
}

// chunkRequest is the accepted payload for MemoryChunks provisioning.
type chunkRequest struct {
	MemoryChunkSizeMiB int64 `json:"MemoryChunkSizeMiB"`
	Oem                struct {
		OFMF struct {
			MaxHeads int    `json:"MaxHeads"`
			Device   string `json:"Device"`
		} `json:"OFMF"`
	} `json:"Oem"`
}

// CreateResource provisions a memory chunk when the target collection is
// the agent's MemoryChunks collection.
func (a *Agent) CreateResource(coll, uri odata.ID, payload json.RawMessage) (any, error) {
	if coll != a.domainID.Append("MemoryChunks") {
		return nil, fmt.Errorf("%w: POST %s", ErrUnsupported, coll)
	}
	var req chunkRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("cxlagent: bad chunk request: %w", err)
	}
	if req.MemoryChunkSizeMiB <= 0 {
		return nil, fmt.Errorf("cxlagent: MemoryChunkSizeMiB must be positive")
	}
	var chunkID string
	var err error
	if req.Oem.OFMF.Device != "" {
		chunkID, err = a.appliance.Carve(req.Oem.OFMF.Device, req.MemoryChunkSizeMiB, req.Oem.OFMF.MaxHeads)
	} else {
		chunkID, err = a.appliance.CarveAny(req.MemoryChunkSizeMiB, req.Oem.OFMF.MaxHeads)
	}
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.chunkByURI[uri] = chunkID
	a.mu.Unlock()
	res := a.chunkResource(uri, chunkID, req.MemoryChunkSizeMiB)
	if err := a.Publish(); err != nil {
		return nil, err
	}
	return res, nil
}

// DeleteResource releases a carved memory chunk.
func (a *Agent) DeleteResource(id odata.ID) error {
	a.mu.Lock()
	chunkID, ok := a.chunkByURI[id]
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownChunk, id)
	}
	if err := a.appliance.Release(chunkID); err != nil {
		return err
	}
	a.mu.Lock()
	delete(a.chunkByURI, id)
	a.mu.Unlock()
	return a.Publish()
}

func (a *Agent) chunkResource(uri odata.ID, chunkID string, sizeMiB int64) redfish.MemoryChunks {
	return redfish.MemoryChunks{
		Resource:           odata.NewResource(uri, redfish.TypeMemoryChunks, chunkID),
		MemoryChunkSizeMiB: sizeMiB,
		AddressRangeType:   "Volatile",
		Status:             odata.StatusOK(),
	}
}

// Publish rebuilds and pushes the agent's complete resource subtrees from
// current appliance state. Publishes are serialized: the snapshot is taken
// inside the critical section, so store contents advance monotonically.
func (a *Agent) Publish() error {
	a.pubMu.Lock()
	defer a.pubMu.Unlock()
	fab := make(map[odata.ID]any)
	cha := make(map[odata.ID]any)

	fabName := a.fabricID.Leaf()
	fab[a.fabricID] = redfish.Fabric{
		Resource:    odata.NewResource(a.fabricID, redfish.TypeFabric, fabName+" Fabric"),
		FabricType:  redfish.ProtocolCXL,
		Status:      odata.StatusOK(),
		Switches:    redfish.Ref(a.fabricID.Append("Switches")),
		Endpoints:   redfish.Ref(a.fabricID.Append("Endpoints")),
		Zones:       redfish.Ref(a.fabricID.Append("Zones")),
		Connections: redfish.Ref(a.fabricID.Append("Connections")),
	}

	// One logical switch whose ports are the appliance's host ports.
	swURI := a.fabricID.Append("Switches", "Switch0")
	fab[swURI] = redfish.Switch{
		Resource:   odata.NewResource(swURI, redfish.TypeSwitch, "CXL Switch 0"),
		SwitchType: redfish.ProtocolCXL,
		Status:     odata.StatusOK(),
		Ports:      redfish.Ref(swURI.Append("Ports")),
		Links:      redfish.SwitchLinks{Chassis: redfish.Ref(a.chassisID)},
	}
	for _, p := range a.appliance.Ports() {
		portURI := swURI.Append("Ports", p)
		fab[portURI] = redfish.Port{
			Resource:     odata.NewResource(portURI, redfish.TypePort, "Port "+p),
			PortID:       p,
			PortProtocol: redfish.ProtocolCXL,
			PortType:     "UpstreamPort",
			LinkState:    "Enabled",
			LinkStatus:   "LinkUp",
			Status:       odata.StatusOK(),
			Links: redfish.PortLinks{
				AssociatedEndpoints: []odata.Ref{odata.NewRef(a.hostEndpointURI(p))},
			},
		}
		epURI := a.hostEndpointURI(p)
		fab[epURI] = redfish.Endpoint{
			Resource:         odata.NewResource(epURI, redfish.TypeEndpoint, "Host endpoint "+p),
			EndpointProtocol: redfish.ProtocolCXL,
			ConnectedEntities: []redfish.ConnectedEntity{{
				EntityType: "ComputerSystem",
				EntityRole: "Initiator",
			}},
			Status: odata.StatusOK(),
			Links:  redfish.EndpointLinks{Ports: []odata.Ref{odata.NewRef(portURI)}},
		}
	}

	// Chassis with memory devices and the memory domain.
	cha[a.chassisID] = redfish.Chassis{
		Resource:    odata.NewResource(a.chassisID, redfish.TypeChassis, a.chassisID.Leaf()),
		ChassisType: "Shelf",
		Status:      odata.StatusOK(),
	}
	var deviceRefs []odata.Ref
	for _, d := range a.appliance.Devices() {
		memURI := a.chassisID.Append("Memory", d.ID)
		cha[memURI] = redfish.Memory{
			Resource:         odata.NewResource(memURI, redfish.TypeMemory, "CXL memory "+d.ID),
			MemoryType:       d.MediaType,
			MemoryDeviceType: "CXL",
			CapacityMiB:      d.CapacityMiB,
			AllocatedMiB:     d.AllocatedMiB(),
			Status:           odata.StatusOK(),
			Links: redfish.MemLinks{
				Endpoints: []odata.Ref{odata.NewRef(a.deviceEndpointURI(d.ID))},
			},
		}
		epURI := a.deviceEndpointURI(d.ID)
		fab[epURI] = redfish.Endpoint{
			Resource:         odata.NewResource(epURI, redfish.TypeEndpoint, "Memory endpoint "+d.ID),
			EndpointProtocol: redfish.ProtocolCXL,
			ConnectedEntities: []redfish.ConnectedEntity{{
				EntityType: "Memory",
				EntityRole: "Target",
				EntityLink: redfish.Ref(memURI),
			}},
			Status: odata.StatusOK(),
		}
		deviceRefs = append(deviceRefs, odata.NewRef(memURI))
	}
	cha[a.domainID] = redfish.MemoryDomain{
		Resource:                  odata.NewResource(a.domainID, redfish.TypeMemoryDomain, "Pooled CXL domain"),
		AllowsMemoryChunkCreation: true,
		MemoryChunks:              redfish.Ref(a.domainID.Append("MemoryChunks")),
		InterleavableMemorySets:   []redfish.MemorySet{{MemorySet: deviceRefs}},
		Status:                    odata.StatusOK(),
	}

	// Carved chunks with their current bindings.
	a.mu.Lock()
	chunkURIs := make(map[string]odata.ID, len(a.chunkByURI))
	for uri, id := range a.chunkByURI {
		chunkURIs[id] = uri
	}
	a.mu.Unlock()
	for _, c := range a.appliance.Chunks() {
		uri, ok := chunkURIs[c.ID]
		if !ok {
			continue // carved outside the OFMF path
		}
		res := a.chunkResource(uri, c.ID, c.SizeMiB)
		for _, p := range c.BoundPorts() {
			res.Links.Endpoints = append(res.Links.Endpoints, odata.NewRef(a.hostEndpointURI(p)))
		}
		cha[uri] = res
	}

	keep := []odata.ID{a.fabricID.Append("Zones"), a.fabricID.Append("Connections")}
	if err := a.conn.PublishSubtree(a.fabricID, fab, keep...); err != nil {
		return fmt.Errorf("cxlagent: publish fabric: %w", err)
	}
	if err := a.conn.PublishSubtree(a.chassisID, cha); err != nil {
		return fmt.Errorf("cxlagent: publish chassis: %w", err)
	}
	return nil
}

// Collections returns the collection URIs the OFMF must register so the
// agent's subtree renders as browsable collections. The core facade calls
// this when wiring an in-process testbed.
func (a *Agent) Collections() service.CollectionsPayload {
	sw := a.fabricID.Append("Switches", "Switch0")
	return service.CollectionsPayload{
		a.fabricID.Append("Switches"):       {redfish.TypeSwitchCollection, "Switches"},
		sw.Append("Ports"):                  {redfish.TypePortCollection, "Ports"},
		a.fabricID.Append("Endpoints"):      {redfish.TypeEndpointCollection, "Endpoints"},
		a.fabricID.Append("Zones"):          {redfish.TypeZoneCollection, "Zones"},
		a.fabricID.Append("Connections"):    {redfish.TypeConnectionCollection, "Connections"},
		a.chassisID.Append("Memory"):        {redfish.TypeMemoryCollection, "Memory"},
		a.chassisID.Append("MemoryDomains"): {redfish.TypeMemoryDomainCollection, "Memory Domains"},
		a.domainID.Append("MemoryChunks"):   {redfish.TypeMemoryChunksCollection, "Memory Chunks"},
	}
}

// Package nvmeagent implements the OFMF Agent for NVMe-over-Fabrics
// storage. It publishes a storage subtree (pools, volumes) and an NVMe
// fabric subtree (host and subsystem endpoints, connections) and
// translates OFMF operations into nvmesim target operations: a Volumes
// POST provisions a namespace, a Connection attaches a volume to the
// initiating host's subsystem and connects the host.
package nvmeagent

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"ofmf/internal/agent"
	"ofmf/internal/emul/nvmesim"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
)

// Sentinel errors.
var (
	ErrUnknownEndpoint = errors.New("nvmeagent: unknown endpoint")
	ErrUnknownVolume   = errors.New("nvmeagent: unknown volume")
	ErrBadConnection   = errors.New("nvmeagent: connection must name one initiator endpoint and one volume")
	ErrUnsupported     = errors.New("nvmeagent: unsupported operation")
)

// Agent is the NVMe-oF fabric agent.
type Agent struct {
	conn   agent.Conn
	target *nvmesim.Target

	fabricID  odata.ID
	storageID odata.ID

	// pubMu serializes Publish; see cxlagent.Agent.pubMu.
	pubMu sync.Mutex

	mu        sync.Mutex
	hosts     map[string]string   // endpoint leaf -> host NQN
	volByURI  map[odata.ID]string // volume resource URI -> target volume id
	conns     map[odata.ID]attachment
	sourceURI odata.ID
	eventSeq  int
}

type attachment struct {
	volume  string
	hostNQN string
	subsys  string
}

// New creates an NVMe-oF agent for the given target.
func New(conn agent.Conn, target *nvmesim.Target, fabricName, storageName string) *Agent {
	return &Agent{
		conn:      conn,
		target:    target,
		fabricID:  service.FabricsURI.Append(fabricName),
		storageID: service.StorageURI.Append(storageName),
		hosts:     make(map[string]string),
		volByURI:  make(map[odata.ID]string),
		conns:     make(map[odata.ID]attachment),
	}
}

// FabricID returns the fabric subtree root the agent owns.
func (a *Agent) FabricID() odata.ID { return a.fabricID }

// SourceURI returns the AggregationSource resource created at Start,
// used for heartbeat refreshes.
func (a *Agent) SourceURI() odata.ID {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sourceURI
}

// StorageID returns the storage subtree root the agent owns.
func (a *Agent) StorageID() odata.ID { return a.storageID }

// RegisterHost adds an initiator endpoint for a compute host. A dedicated
// subsystem for the host is created lazily on first connection.
func (a *Agent) RegisterHost(name string) odata.ID {
	nqn := "nqn.2023-05.org.ofmf:host:" + name
	a.mu.Lock()
	a.hosts[name] = nqn
	a.mu.Unlock()
	return a.fabricID.Append("Endpoints", name)
}

// Start registers the agent with the OFMF, attaches handlers for both
// subtrees and publishes initial state.
func (a *Agent) Start() error {
	uri, err := a.conn.Register(redfish.AggregationSource{
		Resource: odata.Resource{Name: "NVMe-oF Agent (" + a.fabricID.Leaf() + ")"},
		Oem:      redfish.AggSourceOem{OFMF: &redfish.AgentDescriptor{Technology: redfish.ProtocolNVMeOF, Version: "1.0"}},
		Links: redfish.AggSourceLinks{ResourcesAccessed: []odata.Ref{
			odata.NewRef(a.fabricID), odata.NewRef(a.storageID),
		}},
	})
	if err != nil {
		return fmt.Errorf("nvmeagent: register: %w", err)
	}
	a.mu.Lock()
	a.sourceURI = uri
	a.mu.Unlock()
	if err := a.conn.RegisterCollections(a.Collections()); err != nil {
		return fmt.Errorf("nvmeagent: register collections: %w", err)
	}
	if err := a.conn.AttachHandler(a); err != nil {
		return err
	}
	if err := a.conn.AttachHandler(&subHandler{agent: a, prefix: a.storageID}); err != nil {
		return err
	}
	a.target.Subscribe(a.onHardwareEvent)
	return a.Publish()
}

// Stop detaches the agent's handlers.
func (a *Agent) Stop() {
	a.conn.DetachHandler(a.fabricID)
	a.conn.DetachHandler(a.storageID)
}

type subHandler struct {
	agent  *Agent
	prefix odata.ID
}

func (s *subHandler) FabricID() odata.ID { return s.prefix }
func (s *subHandler) CreateConnection(c *redfish.Connection) error {
	return s.agent.CreateConnection(c)
}
func (s *subHandler) DeleteConnection(id odata.ID) error        { return s.agent.DeleteConnection(id) }
func (s *subHandler) CreateZone(z *redfish.Zone) error          { return s.agent.CreateZone(z) }
func (s *subHandler) DeleteZone(id odata.ID) error              { return s.agent.DeleteZone(id) }
func (s *subHandler) Patch(id odata.ID, p map[string]any) error { return s.agent.Patch(id, p) }
func (s *subHandler) CreateResource(coll, uri odata.ID, payload json.RawMessage) (any, error) {
	return s.agent.CreateResource(coll, uri, payload)
}
func (s *subHandler) DeleteResource(id odata.ID) error { return s.agent.DeleteResource(id) }

func (a *Agent) onHardwareEvent(ev nvmesim.Event) {
	a.mu.Lock()
	a.eventSeq++
	id := fmt.Sprintf("nvme-%d", a.eventSeq)
	a.mu.Unlock()
	a.conn.PublishEvent(redfish.EventRecord{
		EventType: redfish.EventAlert,
		EventID:   id,
		Message:   fmt.Sprintf("nvme target: %s volume=%s subsystem=%s host=%s", ev.Kind, ev.Volume, ev.Subsystem, ev.Host),
		MessageID: "OFMF.1.0.NVMe" + ev.Kind,
		Severity:  "OK",
	})
}

func (a *Agent) hostSubsysNQN(host string) string {
	return "nqn.2023-05.org.ofmf:subsys:" + host
}

// ensureSubsystem lazily creates the per-host subsystem with an ACL
// admitting only that host.
func (a *Agent) ensureSubsystem(host, hostNQN string) (string, error) {
	nqn := a.hostSubsysNQN(host)
	for _, s := range a.target.Subsystems() {
		if s == nqn {
			return nqn, nil
		}
	}
	if err := a.target.AddSubsystem(nqn, []string{hostNQN}); err != nil {
		return "", err
	}
	return nqn, nil
}

// CreateConnection attaches the referenced volume to the initiator host's
// subsystem and connects the host.
func (a *Agent) CreateConnection(conn *redfish.Connection) error {
	if len(conn.Links.InitiatorEndpoints) != 1 || len(conn.VolumeInfo) != 1 || conn.VolumeInfo[0].Volume == nil {
		return ErrBadConnection
	}
	epURI := conn.Links.InitiatorEndpoints[0].ODataID
	host := epURI.Leaf()
	a.mu.Lock()
	hostNQN, ok := a.hosts[host]
	volID, vok := a.volByURI[conn.VolumeInfo[0].Volume.ODataID]
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownEndpoint, epURI)
	}
	if !vok {
		return fmt.Errorf("%w: %s", ErrUnknownVolume, conn.VolumeInfo[0].Volume.ODataID)
	}
	subsys, err := a.ensureSubsystem(host, hostNQN)
	if err != nil {
		return err
	}
	if err := a.target.Attach(volID, subsys); err != nil {
		return fmt.Errorf("nvmeagent: attach: %w", err)
	}
	if err := a.target.Connect(hostNQN, subsys); err != nil && !errors.Is(err, nvmesim.ErrAlreadyConnected) {
		_ = a.target.Detach(volID)
		return fmt.Errorf("nvmeagent: connect: %w", err)
	}
	conn.ConnectionType = "Storage"
	a.mu.Lock()
	a.conns[conn.ODataID] = attachment{volume: volID, hostNQN: hostNQN, subsys: subsys}
	a.mu.Unlock()
	return a.Publish()
}

// DeleteConnection detaches the volume and disconnects the host when no
// other connection uses the same subsystem.
func (a *Agent) DeleteConnection(id odata.ID) error {
	a.mu.Lock()
	att, ok := a.conns[id]
	delete(a.conns, id)
	remaining := 0
	for _, other := range a.conns {
		if other.subsys == att.subsys {
			remaining++
		}
	}
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("nvmeagent: unknown connection %s", id)
	}
	if err := a.target.Detach(att.volume); err != nil {
		return err
	}
	if remaining == 0 {
		if err := a.target.Disconnect(att.hostNQN, att.subsys); err != nil && !errors.Is(err, nvmesim.ErrNotConnected) {
			return err
		}
	}
	return a.Publish()
}

// CreateZone records zone membership as subsystem ACL bookkeeping.
func (a *Agent) CreateZone(zone *redfish.Zone) error { return nil }

// DeleteZone accepts zone removal.
func (a *Agent) DeleteZone(id odata.ID) error { return nil }

// Patch rejects hardware property changes the target cannot make.
func (a *Agent) Patch(id odata.ID, patch map[string]any) error {
	return fmt.Errorf("%w: PATCH %s", ErrUnsupported, id)
}

// volumeRequest is the accepted payload for volume provisioning.
type volumeRequest struct {
	CapacityBytes int64 `json:"CapacityBytes"`
	Oem           struct {
		OFMF struct {
			Pool string `json:"Pool"`
		} `json:"OFMF"`
	} `json:"Oem"`
}

// CreateResource provisions a volume when the target collection is the
// agent's Volumes collection.
func (a *Agent) CreateResource(coll, uri odata.ID, payload json.RawMessage) (any, error) {
	if coll != a.storageID.Append("Volumes") {
		return nil, fmt.Errorf("%w: POST %s", ErrUnsupported, coll)
	}
	var req volumeRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("nvmeagent: bad volume request: %w", err)
	}
	if req.CapacityBytes <= 0 {
		return nil, fmt.Errorf("nvmeagent: CapacityBytes must be positive")
	}
	pool := req.Oem.OFMF.Pool
	if pool == "" {
		pools := a.target.Pools()
		if len(pools) == 0 {
			return nil, fmt.Errorf("nvmeagent: no pools configured")
		}
		// Pick the pool with the most free capacity.
		sort.Slice(pools, func(i, j int) bool {
			fi := pools[i].CapacityBytes - pools[i].AllocatedBytes()
			fj := pools[j].CapacityBytes - pools[j].AllocatedBytes()
			return fi > fj
		})
		pool = pools[0].ID
	}
	volID, err := a.target.CreateVolume(pool, req.CapacityBytes)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.volByURI[uri] = volID
	a.mu.Unlock()
	res := a.volumeResource(uri, volID, req.CapacityBytes)
	if err := a.Publish(); err != nil {
		return nil, err
	}
	return res, nil
}

// DeleteResource deletes a provisioned volume.
func (a *Agent) DeleteResource(id odata.ID) error {
	a.mu.Lock()
	volID, ok := a.volByURI[id]
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownVolume, id)
	}
	if err := a.target.DeleteVolume(volID); err != nil {
		return err
	}
	a.mu.Lock()
	delete(a.volByURI, id)
	a.mu.Unlock()
	return a.Publish()
}

func (a *Agent) volumeResource(uri odata.ID, volID string, bytes int64) redfish.Volume {
	return redfish.Volume{
		Resource:      odata.NewResource(uri, redfish.TypeVolume, volID),
		Status:        odata.StatusOK(),
		CapacityBytes: bytes,
		Identifiers:   []redfish.Identifier{{DurableName: "uuid:" + volID, DurableNameFormat: "UUID"}},
	}
}

// Publish rebuilds and pushes the agent's subtrees from target state.
// Publishes are serialized so snapshots advance monotonically.
func (a *Agent) Publish() error {
	a.pubMu.Lock()
	defer a.pubMu.Unlock()
	fab := make(map[odata.ID]any)
	sto := make(map[odata.ID]any)

	fab[a.fabricID] = redfish.Fabric{
		Resource:    odata.NewResource(a.fabricID, redfish.TypeFabric, a.fabricID.Leaf()+" Fabric"),
		FabricType:  redfish.ProtocolNVMeOF,
		Status:      odata.StatusOK(),
		Endpoints:   redfish.Ref(a.fabricID.Append("Endpoints")),
		Zones:       redfish.Ref(a.fabricID.Append("Zones")),
		Connections: redfish.Ref(a.fabricID.Append("Connections")),
	}

	a.mu.Lock()
	hosts := make(map[string]string, len(a.hosts))
	for k, v := range a.hosts {
		hosts[k] = v
	}
	volURIs := make(map[string]odata.ID, len(a.volByURI))
	for uri, id := range a.volByURI {
		volURIs[id] = uri
	}
	a.mu.Unlock()

	for host, nqn := range hosts {
		epURI := a.fabricID.Append("Endpoints", host)
		fab[epURI] = redfish.Endpoint{
			Resource:         odata.NewResource(epURI, redfish.TypeEndpoint, "Host "+host),
			EndpointProtocol: redfish.ProtocolNVMeOF,
			Identifiers:      []redfish.Identifier{{DurableName: nqn, DurableNameFormat: "NQN"}},
			ConnectedEntities: []redfish.ConnectedEntity{{
				EntityType: "ComputerSystem", EntityRole: "Initiator",
			}},
			Status: odata.StatusOK(),
		}
	}
	for _, nqn := range a.target.Subsystems() {
		epURI := a.fabricID.Append("Endpoints", sanitize(nqn))
		fab[epURI] = redfish.Endpoint{
			Resource:         odata.NewResource(epURI, redfish.TypeEndpoint, nqn),
			EndpointProtocol: redfish.ProtocolNVMeOF,
			Identifiers:      []redfish.Identifier{{DurableName: nqn, DurableNameFormat: "NQN"}},
			ConnectedEntities: []redfish.ConnectedEntity{{
				EntityType: "Volume", EntityRole: "Target",
			}},
			Status: odata.StatusOK(),
		}
	}

	sto[a.storageID] = redfish.Storage{
		Resource:     odata.NewResource(a.storageID, redfish.TypeStorage, a.storageID.Leaf()),
		Status:       odata.StatusOK(),
		StoragePools: redfish.Ref(a.storageID.Append("StoragePools")),
		Volumes:      redfish.Ref(a.storageID.Append("Volumes")),
	}
	for _, p := range a.target.Pools() {
		poolURI := a.storageID.Append("StoragePools", p.ID)
		sto[poolURI] = redfish.StoragePool{
			Resource: odata.NewResource(poolURI, redfish.TypeStoragePool, p.ID),
			Status:   odata.StatusOK(),
			Capacity: redfish.Capacity{Data: redfish.CapacityInfo{
				AllocatedBytes: p.CapacityBytes,
				ConsumedBytes:  p.AllocatedBytes(),
			}},
		}
	}
	for _, v := range a.target.Volumes() {
		uri, ok := volURIs[v.ID]
		if !ok {
			continue
		}
		res := a.volumeResource(uri, v.ID, v.Bytes)
		if v.Subsystem != "" {
			res.Links.ClientEndpoints = []odata.Ref{
				odata.NewRef(a.fabricID.Append("Endpoints", sanitize(v.Subsystem))),
			}
		}
		sto[uri] = res
	}

	keep := []odata.ID{a.fabricID.Append("Zones"), a.fabricID.Append("Connections")}
	if err := a.conn.PublishSubtree(a.fabricID, fab, keep...); err != nil {
		return fmt.Errorf("nvmeagent: publish fabric: %w", err)
	}
	if err := a.conn.PublishSubtree(a.storageID, sto); err != nil {
		return fmt.Errorf("nvmeagent: publish storage: %w", err)
	}
	return nil
}

// sanitize turns an NQN into a URI-safe path segment.
func sanitize(nqn string) string {
	out := make([]rune, 0, len(nqn))
	for _, r := range nqn {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// Collections returns the collection URIs the OFMF must register for this
// agent's subtrees.
func (a *Agent) Collections() service.CollectionsPayload {
	return service.CollectionsPayload{
		a.fabricID.Append("Endpoints"):     {redfish.TypeEndpointCollection, "Endpoints"},
		a.fabricID.Append("Zones"):         {redfish.TypeZoneCollection, "Zones"},
		a.fabricID.Append("Connections"):   {redfish.TypeConnectionCollection, "Connections"},
		a.storageID.Append("StoragePools"): {redfish.TypeStoragePoolCollection, "Storage Pools"},
		a.storageID.Append("Volumes"):      {redfish.TypeVolumeCollection, "Volumes"},
	}
}

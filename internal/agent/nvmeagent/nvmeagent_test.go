package nvmeagent

import (
	"context"
	"errors"
	"testing"

	"ofmf/internal/agent"
	"ofmf/internal/emul/nvmesim"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
)

func newAgent(t *testing.T) (*service.Service, *nvmesim.Target, *Agent) {
	t.Helper()
	svc := service.New(service.Config{DirectWrites: true})
	t.Cleanup(svc.Close)
	target := nvmesim.New()
	if err := target.AddPool("pool0", 1<<30); err != nil {
		t.Fatal(err)
	}
	ag := New(&agent.Local{Service: svc}, target, "NVMe", "JBOF")
	for uri, meta := range ag.Collections() {
		svc.Store().RegisterCollection(uri, meta[0], meta[1])
	}
	ag.RegisterHost("hostA")
	if err := ag.Start(); err != nil {
		t.Fatal(err)
	}
	return svc, target, ag
}

func provision(t *testing.T, svc *service.Service, ag *Agent, bytes int64) odata.ID {
	t.Helper()
	uri, err := svc.ProvisionResource(context.Background(), ag.StorageID().Append("Volumes"),
		[]byte(`{"CapacityBytes": 1048576}`))
	if err != nil {
		t.Fatal(err)
	}
	return uri
}

func TestPublishContents(t *testing.T) {
	svc, _, ag := newAgent(t)
	st := svc.Store()
	for _, id := range []odata.ID{
		ag.FabricID(),
		ag.FabricID().Append("Endpoints", "hostA"),
		ag.StorageID(),
		ag.StorageID().Append("StoragePools", "pool0"),
	} {
		if !st.Exists(id) {
			t.Errorf("missing %s", id)
		}
	}
	var pool redfish.StoragePool
	if err := st.GetAs(ag.StorageID().Append("StoragePools", "pool0"), &pool); err != nil {
		t.Fatal(err)
	}
	if pool.Capacity.Data.AllocatedBytes != 1<<30 {
		t.Errorf("pool = %+v", pool)
	}
}

func TestConnectionValidation(t *testing.T) {
	svc, _, ag := newAgent(t)
	if err := ag.CreateConnection(&redfish.Connection{}); !errors.Is(err, ErrBadConnection) {
		t.Errorf("err = %v", err)
	}
	vol := provision(t, svc, ag, 1<<20)
	// Unknown host endpoint.
	err := ag.CreateConnection(&redfish.Connection{
		VolumeInfo: []redfish.VolumeInfo{{Volume: redfish.Ref(vol)}},
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{odata.NewRef(ag.FabricID().Append("Endpoints", "ghost"))},
		},
	})
	if !errors.Is(err, ErrUnknownEndpoint) {
		t.Errorf("err = %v", err)
	}
	// Unknown volume.
	err = ag.CreateConnection(&redfish.Connection{
		VolumeInfo: []redfish.VolumeInfo{{Volume: redfish.Ref("/redfish/v1/ghost")}},
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{odata.NewRef(ag.FabricID().Append("Endpoints", "hostA"))},
		},
	})
	if !errors.Is(err, ErrUnknownVolume) {
		t.Errorf("err = %v", err)
	}
}

func TestConnectionLifecycleCreatesSubsystem(t *testing.T) {
	svc, target, ag := newAgent(t)
	vol := provision(t, svc, ag, 1<<20)
	conn := redfish.Connection{
		Resource:   odata.NewResource(ag.FabricID().Append("Connections", "1"), redfish.TypeConnection, "1"),
		VolumeInfo: []redfish.VolumeInfo{{Volume: redfish.Ref(vol)}},
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{odata.NewRef(ag.FabricID().Append("Endpoints", "hostA"))},
		},
	}
	if err := ag.CreateConnection(&conn); err != nil {
		t.Fatal(err)
	}
	subs := target.Subsystems()
	if len(subs) != 1 {
		t.Fatalf("subsystems = %v", subs)
	}
	info, _ := target.SubsystemInfo(subs[0])
	if len(info.Hosts()) != 1 || len(info.Namespaces()) != 1 {
		t.Errorf("subsystem = hosts %v namespaces %v", info.Hosts(), info.Namespaces())
	}
	// The subsystem endpoint appears in the published fabric.
	members, err := svc.Store().Members(ag.FabricID().Append("Endpoints"))
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 { // hostA + subsystem
		t.Errorf("endpoints = %v", members)
	}
	// Teardown disconnects the host when it was the last user.
	if err := ag.DeleteConnection(conn.ODataID); err != nil {
		t.Fatal(err)
	}
	info, _ = target.SubsystemInfo(subs[0])
	if len(info.Hosts()) != 0 {
		t.Errorf("host still connected: %v", info.Hosts())
	}
	if err := ag.DeleteConnection(conn.ODataID); err == nil {
		t.Error("double delete accepted")
	}
}

func TestSharedSubsystemRefcounting(t *testing.T) {
	svc, target, ag := newAgent(t)
	v1 := provision(t, svc, ag, 1<<20)
	v2 := provision(t, svc, ag, 1<<20)
	mk := func(name string, vol odata.ID) redfish.Connection {
		return redfish.Connection{
			Resource:   odata.NewResource(ag.FabricID().Append("Connections", name), redfish.TypeConnection, name),
			VolumeInfo: []redfish.VolumeInfo{{Volume: redfish.Ref(vol)}},
			Links: redfish.ConnectionLinks{
				InitiatorEndpoints: []odata.Ref{odata.NewRef(ag.FabricID().Append("Endpoints", "hostA"))},
			},
		}
	}
	c1, c2 := mk("1", v1), mk("2", v2)
	if err := ag.CreateConnection(&c1); err != nil {
		t.Fatal(err)
	}
	if err := ag.CreateConnection(&c2); err != nil {
		t.Fatal(err)
	}
	// Deleting one connection keeps the host connected for the other.
	if err := ag.DeleteConnection(c1.ODataID); err != nil {
		t.Fatal(err)
	}
	info, _ := target.SubsystemInfo(ag.hostSubsysNQN("hostA"))
	if len(info.Hosts()) != 1 {
		t.Errorf("host disconnected while still using a namespace: %v", info.Hosts())
	}
	if err := ag.DeleteConnection(c2.ODataID); err != nil {
		t.Fatal(err)
	}
	info, _ = target.SubsystemInfo(ag.hostSubsysNQN("hostA"))
	if len(info.Hosts()) != 0 {
		t.Errorf("host still connected: %v", info.Hosts())
	}
}

func TestProvisionValidation(t *testing.T) {
	_, _, ag := newAgent(t)
	vols := ag.StorageID().Append("Volumes")
	if _, err := ag.CreateResource(ag.FabricID().Append("Endpoints"), "/x", []byte(`{}`)); !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v", err)
	}
	if _, err := ag.CreateResource(vols, vols.Append("1"), []byte(`{"CapacityBytes":0}`)); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := ag.CreateResource(vols, vols.Append("1"), []byte(`{"CapacityBytes": 99999999999999}`)); err == nil {
		t.Error("over-capacity accepted")
	}
	if err := ag.DeleteResource(vols.Append("42")); !errors.Is(err, ErrUnknownVolume) {
		t.Errorf("err = %v", err)
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("nqn.2023-05.org.ofmf:subsys:hostA"); got != "nqn.2023-05.org.ofmf_subsys_hostA" {
		t.Errorf("sanitize = %q", got)
	}
}

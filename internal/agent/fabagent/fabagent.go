// Package fabagent implements the OFMF Agent for a general network fabric
// (InfiniBand/Slingshot-class). It publishes the fabric's switches, ports
// and endpoints from the fabsim emulator, maps OFMF Zones onto fabric
// zoning, realizes Connections as bandwidth-reserved flows, forwards
// link-state events upward, and applies Port PATCHes (LinkState) to the
// emulated hardware — the dynamic network fail-over path the paper calls
// out.
package fabagent

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"ofmf/internal/agent"
	"ofmf/internal/emul/fabsim"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
)

// Sentinel errors.
var (
	ErrUnknownEndpoint = errors.New("fabagent: unknown endpoint")
	ErrUnknownPort     = errors.New("fabagent: unknown port")
	ErrBadConnection   = errors.New("fabagent: connection must name one initiator and one target endpoint")
	ErrUnsupported     = errors.New("fabagent: unsupported operation")
)

// Agent is the network fabric agent.
type Agent struct {
	conn   agent.Conn
	fabric *fabsim.Fabric

	fabricID odata.ID
	protocol string

	// pubMu serializes Publish; see cxlagent.Agent.pubMu.
	pubMu sync.Mutex

	mu        sync.Mutex
	zoneByURI map[odata.ID]string // zone resource URI -> fabsim zone id
	flowByURI map[odata.ID]string // connection URI -> fabsim flow id
	eventSeq  int
	sourceURI odata.ID
}

// New creates a network fabric agent. protocol names the fabric technology
// (redfish.ProtocolInfiniBand, redfish.ProtocolEthernet, ...).
func New(conn agent.Conn, fabric *fabsim.Fabric, fabricName, protocol string) *Agent {
	return &Agent{
		conn:      conn,
		fabric:    fabric,
		fabricID:  service.FabricsURI.Append(fabricName),
		protocol:  protocol,
		zoneByURI: make(map[odata.ID]string),
		flowByURI: make(map[odata.ID]string),
	}
}

// FabricID returns the fabric subtree root the agent owns.
func (a *Agent) FabricID() odata.ID { return a.fabricID }

// SourceURI returns the AggregationSource resource created at Start,
// used for heartbeat refreshes.
func (a *Agent) SourceURI() odata.ID {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sourceURI
}

// Start registers with the OFMF, attaches the handler and publishes.
func (a *Agent) Start() error {
	uri, err := a.conn.Register(redfish.AggregationSource{
		Resource: odata.Resource{Name: "Fabric Agent (" + a.fabricID.Leaf() + ")"},
		Oem:      redfish.AggSourceOem{OFMF: &redfish.AgentDescriptor{Technology: a.protocol, Version: "1.0"}},
		Links:    redfish.AggSourceLinks{ResourcesAccessed: []odata.Ref{odata.NewRef(a.fabricID)}},
	})
	if err != nil {
		return fmt.Errorf("fabagent: register: %w", err)
	}
	a.mu.Lock()
	a.sourceURI = uri
	a.mu.Unlock()
	if err := a.conn.RegisterCollections(a.Collections()); err != nil {
		return fmt.Errorf("fabagent: register collections: %w", err)
	}
	if err := a.conn.AttachHandler(a); err != nil {
		return err
	}
	a.fabric.Subscribe(a.onHardwareEvent)
	return a.Publish()
}

// Stop detaches the agent's handler.
func (a *Agent) Stop() { a.conn.DetachHandler(a.fabricID) }

func (a *Agent) onHardwareEvent(ev fabsim.Event) {
	a.mu.Lock()
	a.eventSeq++
	id := fmt.Sprintf("fab-%d", a.eventSeq)
	a.mu.Unlock()
	severity := "OK"
	eventType := redfish.EventStatusChange
	if ev.Kind == "LinkDown" {
		severity = "Critical"
		eventType = redfish.EventAlert
	}
	var origin odata.ID
	if ev.Link != "" {
		parts := strings.SplitN(ev.Link, "|", 2)
		if len(parts) == 2 {
			origin = a.portURI(parts[0], parts[1])
		}
	}
	a.conn.PublishEvent(redfish.EventRecord{
		EventType:         eventType,
		EventID:           id,
		Severity:          severity,
		Message:           fmt.Sprintf("fabric %s: %s %s%s", a.fabricID.Leaf(), ev.Kind, ev.Link, ev.Zone),
		MessageID:         "OFMF.1.0.Fabric" + ev.Kind,
		OriginOfCondition: refOrNil(origin),
	})
	if ev.Kind == "LinkDown" || ev.Kind == "LinkUp" {
		// Reflect the new hardware state (and any reroute) in the tree.
		if ev.Kind == "LinkDown" {
			a.fabric.RerouteBroken()
		}
		_ = a.Publish()
	}
}

func refOrNil(id odata.ID) *odata.Ref {
	if id.IsZero() {
		return nil
	}
	r := odata.NewRef(id)
	return &r
}

// portURI names the port on node a facing node b.
func (a *Agent) portURI(node, peer string) odata.ID {
	return a.fabricID.Append("Switches", node, "Ports", peer)
}

func (a *Agent) endpointURI(ep string) odata.ID {
	return a.fabricID.Append("Endpoints", ep)
}

// endpointFromURI maps an endpoint URI back to a fabsim endpoint id.
func (a *Agent) endpointFromURI(uri odata.ID) (string, error) {
	if uri.Parent() != a.fabricID.Append("Endpoints") {
		return "", fmt.Errorf("%w: %s", ErrUnknownEndpoint, uri)
	}
	leaf := uri.Leaf()
	for _, ep := range a.fabric.Endpoints() {
		if ep == leaf {
			return ep, nil
		}
	}
	return "", fmt.Errorf("%w: %s", ErrUnknownEndpoint, uri)
}

// CreateZone maps the OFMF zone onto a fabsim zone.
func (a *Agent) CreateZone(zone *redfish.Zone) error {
	var members []string
	for _, ref := range zone.Links.Endpoints {
		ep, err := a.endpointFromURI(ref.ODataID)
		if err != nil {
			return err
		}
		members = append(members, ep)
	}
	zid := "zone-" + zone.ODataID.Leaf()
	if err := a.fabric.CreateZone(zid, members); err != nil {
		return err
	}
	a.mu.Lock()
	a.zoneByURI[zone.ODataID] = zid
	a.mu.Unlock()
	return nil
}

// DeleteZone removes the mapped fabsim zone.
func (a *Agent) DeleteZone(id odata.ID) error {
	a.mu.Lock()
	zid, ok := a.zoneByURI[id]
	delete(a.zoneByURI, id)
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("fabagent: unknown zone %s", id)
	}
	return a.fabric.DeleteZone(zid)
}

// connOem reads the OFMF bandwidth extension from a connection payload.
type connOem struct {
	Oem struct {
		OFMF struct {
			BandwidthGbps float64 `json:"BandwidthGbps"`
		} `json:"OFMF"`
	} `json:"Oem"`
}

// CreateConnection reserves a bandwidth flow between the initiator and
// target endpoints.
func (a *Agent) CreateConnection(conn *redfish.Connection) error {
	if len(conn.Links.InitiatorEndpoints) != 1 || len(conn.Links.TargetEndpoints) != 1 {
		return ErrBadConnection
	}
	from, err := a.endpointFromURI(conn.Links.InitiatorEndpoints[0].ODataID)
	if err != nil {
		return err
	}
	to, err := a.endpointFromURI(conn.Links.TargetEndpoints[0].ODataID)
	if err != nil {
		return err
	}
	gbps := 1.0
	if conn.Desc != "" {
		// Bandwidth may be embedded in Description as "<N>Gbps" by simple clients.
		var n float64
		if _, err := fmt.Sscanf(conn.Desc, "%fGbps", &n); err == nil && n > 0 {
			gbps = n
		}
	}
	flow, err := a.fabric.Reserve(from, to, gbps)
	if err != nil {
		return fmt.Errorf("fabagent: reserve: %w", err)
	}
	a.mu.Lock()
	a.flowByURI[conn.ODataID] = flow.ID
	a.mu.Unlock()
	if conn.ConnectionType == "" {
		conn.ConnectionType = "Storage"
	}
	return a.Publish()
}

// DeleteConnection releases the reserved flow.
func (a *Agent) DeleteConnection(id odata.ID) error {
	a.mu.Lock()
	flowID, ok := a.flowByURI[id]
	delete(a.flowByURI, id)
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("fabagent: unknown connection %s", id)
	}
	if err := a.fabric.Release(flowID); err != nil {
		return err
	}
	return a.Publish()
}

// Patch applies LinkState changes to ports: Disabled fails the underlying
// link, Enabled restores it.
func (a *Agent) Patch(id odata.ID, patch map[string]any) error {
	// Expected shape: /Fabrics/F/Switches/{node}/Ports/{peer}
	ports := id.Parent()
	if ports.Leaf() != "Ports" {
		return fmt.Errorf("%w: PATCH %s", ErrUnsupported, id)
	}
	node := ports.Parent().Leaf()
	peer := id.Leaf()
	state, ok := patch["LinkState"].(string)
	if !ok {
		return fmt.Errorf("%w: only LinkState is patchable", ErrUnsupported)
	}
	var err error
	switch state {
	case "Disabled":
		err = a.fabric.FailLink(node, peer)
	case "Enabled":
		err = a.fabric.RestoreLink(node, peer)
	default:
		return fmt.Errorf("fabagent: unknown LinkState %q", state)
	}
	if err != nil {
		return err
	}
	return a.Publish()
}

// Publish rebuilds and pushes the fabric subtree from emulator state.
// Publishes are serialized so snapshots advance monotonically.
func (a *Agent) Publish() error {
	a.pubMu.Lock()
	defer a.pubMu.Unlock()
	res := make(map[odata.ID]any)
	res[a.fabricID] = redfish.Fabric{
		Resource:    odata.NewResource(a.fabricID, redfish.TypeFabric, a.fabricID.Leaf()+" Fabric"),
		FabricType:  a.protocol,
		Status:      odata.StatusOK(),
		Switches:    redfish.Ref(a.fabricID.Append("Switches")),
		Endpoints:   redfish.Ref(a.fabricID.Append("Endpoints")),
		Zones:       redfish.Ref(a.fabricID.Append("Zones")),
		Connections: redfish.Ref(a.fabricID.Append("Connections")),
	}

	links := a.fabric.Links()
	for _, sw := range a.fabric.Switches() {
		swURI := a.fabricID.Append("Switches", sw)
		res[swURI] = redfish.Switch{
			Resource:   odata.NewResource(swURI, redfish.TypeSwitch, "Switch "+sw),
			SwitchType: a.protocol,
			Status:     odata.StatusOK(),
			Ports:      redfish.Ref(swURI.Append("Ports")),
		}
	}
	for _, l := range links {
		for _, pair := range [][2]string{{l.A, l.B}, {l.B, l.A}} {
			node, peer := pair[0], pair[1]
			if !a.isSwitch(node) {
				continue // endpoints do not publish port resources
			}
			portURI := a.portURI(node, peer)
			linkState, linkStatus := "Enabled", "LinkUp"
			health := odata.StatusOK()
			if !l.Up() {
				linkState, linkStatus = "Disabled", "LinkDown"
				health = odata.Status{State: odata.StateDisabled, Health: odata.HealthCritical}
			}
			port := redfish.Port{
				Resource:         odata.NewResource(portURI, redfish.TypePort, fmt.Sprintf("Port %s->%s", node, peer)),
				PortID:           peer,
				PortProtocol:     a.protocol,
				MaxSpeedGbps:     l.CapacityGbps,
				CurrentSpeedGbps: l.CapacityGbps - l.ReservedGbps(),
				LinkState:        linkState,
				LinkStatus:       linkStatus,
				Status:           health,
			}
			if a.isSwitch(peer) {
				port.PortType = "InterswitchPort"
				port.Links.ConnectedSwitches = []odata.Ref{odata.NewRef(a.fabricID.Append("Switches", peer))}
			} else {
				port.PortType = "DownstreamPort"
				port.Links.AssociatedEndpoints = []odata.Ref{odata.NewRef(a.endpointURI(peer))}
			}
			res[portURI] = port
		}
	}
	for _, ep := range a.fabric.Endpoints() {
		epURI := a.endpointURI(ep)
		res[epURI] = redfish.Endpoint{
			Resource:         odata.NewResource(epURI, redfish.TypeEndpoint, "Endpoint "+ep),
			EndpointProtocol: a.protocol,
			ConnectedEntities: []redfish.ConnectedEntity{{
				EntityType: "ComputerSystem", EntityRole: "Both",
			}},
			Status: odata.StatusOK(),
		}
	}
	return a.conn.PublishSubtree(a.fabricID, res,
		a.fabricID.Append("Zones"), a.fabricID.Append("Connections"))
}

func (a *Agent) isSwitch(node string) bool {
	for _, sw := range a.fabric.Switches() {
		if sw == node {
			return true
		}
	}
	return false
}

// Collections returns the collection URIs to register for this agent.
func (a *Agent) Collections() service.CollectionsPayload {
	out := service.CollectionsPayload{
		a.fabricID.Append("Switches"):    {redfish.TypeSwitchCollection, "Switches"},
		a.fabricID.Append("Endpoints"):   {redfish.TypeEndpointCollection, "Endpoints"},
		a.fabricID.Append("Zones"):       {redfish.TypeZoneCollection, "Zones"},
		a.fabricID.Append("Connections"): {redfish.TypeConnectionCollection, "Connections"},
	}
	for _, sw := range a.fabric.Switches() {
		out[a.fabricID.Append("Switches", sw, "Ports")] = [2]string{redfish.TypePortCollection, "Ports"}
	}
	return out
}

package fabagent

import (
	"errors"
	"testing"

	"ofmf/internal/agent"
	"ofmf/internal/emul/fabsim"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
)

func newAgent(t *testing.T) (*service.Service, *fabsim.Fabric, *Agent) {
	t.Helper()
	svc := service.New(service.Config{DirectWrites: true})
	t.Cleanup(svc.Close)
	fab := fabsim.New()
	if _, err := fabsim.BuildStar(fab, "h", 4, 100); err != nil {
		t.Fatal(err)
	}
	ag := New(&agent.Local{Service: svc}, fab, "IB", redfish.ProtocolInfiniBand)
	for uri, meta := range ag.Collections() {
		svc.Store().RegisterCollection(uri, meta[0], meta[1])
	}
	if err := ag.Start(); err != nil {
		t.Fatal(err)
	}
	return svc, fab, ag
}

func epRef(ag *Agent, name string) odata.Ref {
	return odata.NewRef(ag.FabricID().Append("Endpoints", name))
}

func TestPublishContents(t *testing.T) {
	svc, _, ag := newAgent(t)
	st := svc.Store()
	for _, id := range []odata.ID{
		ag.FabricID(),
		ag.FabricID().Append("Switches", "sw0"),
		ag.FabricID().Append("Switches", "sw0", "Ports", "h0"),
		ag.FabricID().Append("Endpoints", "h0"),
	} {
		if !st.Exists(id) {
			t.Errorf("missing %s", id)
		}
	}
	var port redfish.Port
	if err := st.GetAs(ag.FabricID().Append("Switches", "sw0", "Ports", "h0"), &port); err != nil {
		t.Fatal(err)
	}
	if port.PortType != "DownstreamPort" || port.LinkStatus != "LinkUp" {
		t.Errorf("port = %+v", port)
	}
	if port.MaxSpeedGbps != 100 {
		t.Errorf("speed = %f", port.MaxSpeedGbps)
	}
}

func TestZoneMapping(t *testing.T) {
	_, fab, ag := newAgent(t)
	zone := redfish.Zone{
		Resource: odata.NewResource(ag.FabricID().Append("Zones", "1"), redfish.TypeZone, "z"),
		Links:    redfish.ZoneLinks{Endpoints: []odata.Ref{epRef(ag, "h0"), epRef(ag, "h1")}},
	}
	if err := ag.CreateZone(&zone); err != nil {
		t.Fatal(err)
	}
	if got := len(fab.Zones()); got != 1 {
		t.Fatalf("zones = %d", got)
	}
	// Unknown endpoint in zone.
	bad := redfish.Zone{
		Resource: odata.NewResource(ag.FabricID().Append("Zones", "2"), redfish.TypeZone, "z"),
		Links:    redfish.ZoneLinks{Endpoints: []odata.Ref{epRef(ag, "ghost")}},
	}
	if err := ag.CreateZone(&bad); !errors.Is(err, ErrUnknownEndpoint) {
		t.Errorf("err = %v", err)
	}
	if err := ag.DeleteZone(zone.ODataID); err != nil {
		t.Fatal(err)
	}
	if got := len(fab.Zones()); got != 0 {
		t.Errorf("zones = %d", got)
	}
	if err := ag.DeleteZone(zone.ODataID); err == nil {
		t.Error("double delete accepted")
	}
}

func TestConnectionFlows(t *testing.T) {
	svc, fab, ag := newAgent(t)
	conn := redfish.Connection{
		Resource: odata.NewResource(ag.FabricID().Append("Connections", "1"), redfish.TypeConnection, "c"),
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{epRef(ag, "h0")},
			TargetEndpoints:    []odata.Ref{epRef(ag, "h1")},
		},
	}
	if err := ag.CreateConnection(&conn); err != nil {
		t.Fatal(err)
	}
	flows := fab.Flows()
	if len(flows) != 1 {
		t.Fatalf("flows = %d", len(flows))
	}
	// The published port reflects reserved bandwidth.
	var port redfish.Port
	if err := svc.Store().GetAs(ag.FabricID().Append("Switches", "sw0", "Ports", "h0"), &port); err != nil {
		t.Fatal(err)
	}
	if port.CurrentSpeedGbps >= port.MaxSpeedGbps {
		t.Errorf("reservation not reflected: %f of %f", port.CurrentSpeedGbps, port.MaxSpeedGbps)
	}
	if err := ag.DeleteConnection(conn.ODataID); err != nil {
		t.Fatal(err)
	}
	if len(fab.Flows()) != 0 {
		t.Error("flow leaked")
	}
}

func TestConnectionValidation(t *testing.T) {
	_, _, ag := newAgent(t)
	if err := ag.CreateConnection(&redfish.Connection{}); !errors.Is(err, ErrBadConnection) {
		t.Errorf("err = %v", err)
	}
	conn := redfish.Connection{
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{epRef(ag, "ghost")},
			TargetEndpoints:    []odata.Ref{epRef(ag, "h1")},
		},
	}
	if err := ag.CreateConnection(&conn); !errors.Is(err, ErrUnknownEndpoint) {
		t.Errorf("err = %v", err)
	}
}

func TestPatchLinkState(t *testing.T) {
	svc, fab, ag := newAgent(t)
	port := ag.FabricID().Append("Switches", "sw0", "Ports", "h0")
	if err := ag.Patch(port, map[string]any{"LinkState": "Disabled"}); err != nil {
		t.Fatal(err)
	}
	l, _ := fab.Link("sw0", "h0")
	if l.Up() {
		t.Error("link still up")
	}
	var res redfish.Port
	if err := svc.Store().GetAs(port, &res); err != nil {
		t.Fatal(err)
	}
	if res.LinkStatus != "LinkDown" || res.Status.Health != "Critical" {
		t.Errorf("published port = %+v", res)
	}
	if err := ag.Patch(port, map[string]any{"LinkState": "Enabled"}); err != nil {
		t.Fatal(err)
	}
	l, _ = fab.Link("sw0", "h0")
	if !l.Up() {
		t.Error("link not restored")
	}
	// Invalid patches.
	if err := ag.Patch(port, map[string]any{"LinkState": "Sideways"}); err == nil {
		t.Error("bad state accepted")
	}
	if err := ag.Patch(port, map[string]any{"Name": "x"}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v", err)
	}
	if err := ag.Patch(ag.FabricID().Append("Endpoints", "h0"), map[string]any{"LinkState": "Disabled"}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v", err)
	}
}

func TestLinkEventPublishesAlert(t *testing.T) {
	svc, fab, _ := newAgent(t)
	before := svc.Bus().Stats().Published
	if err := fab.FailLink("sw0", "h0"); err != nil {
		t.Fatal(err)
	}
	if after := svc.Bus().Stats().Published; after <= before {
		t.Error("no alert published on link failure")
	}
}

func TestFailureTriggersReroute(t *testing.T) {
	svc := service.New(service.Config{DirectWrites: true})
	defer svc.Close()
	fab := fabsim.New()
	spec, err := fabsim.BuildFatTree(fab, "n", 2, 2, 1, 100, 400)
	if err != nil {
		t.Fatal(err)
	}
	ag := New(&agent.Local{Service: svc}, fab, "IB", redfish.ProtocolInfiniBand)
	for uri, meta := range ag.Collections() {
		svc.Store().RegisterCollection(uri, meta[0], meta[1])
	}
	if err := ag.Start(); err != nil {
		t.Fatal(err)
	}
	conn := redfish.Connection{
		Resource: odata.NewResource(ag.FabricID().Append("Connections", "1"), redfish.TypeConnection, "c"),
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{odata.NewRef(ag.FabricID().Append("Endpoints", spec.Endpoints[0]))},
			TargetEndpoints:    []odata.Ref{odata.NewRef(ag.FabricID().Append("Endpoints", spec.Endpoints[1]))},
		},
	}
	if err := ag.CreateConnection(&conn); err != nil {
		t.Fatal(err)
	}
	route := fab.Flows()[0].Route
	spine := route[2]
	if err := fab.FailLink(route[1], spine); err != nil {
		t.Fatal(err)
	}
	// The agent's event hook reroutes synchronously (Local conn).
	newRoute := fab.Flows()[0].Route
	if newRoute[2] == spine {
		t.Errorf("flow not rerouted: %v", newRoute)
	}
}

package agent

import (
	"fmt"
	"testing"

	"ofmf/internal/redfish"
)

func rec(i int) redfish.EventRecord {
	return redfish.EventRecord{EventID: fmt.Sprintf("e%04d", i)}
}

// TestSpoolAddDuringDrainKeepsInFlightHead is the regression test for
// the drain-interleave bug: add() used to evict buf[0] on overflow even
// mid-drain, which is exactly the record the drainer had peeked and was
// POSTing — pop then removed a different record, delivering one event
// twice and silently losing another.
func TestSpoolAddDuringDrainKeepsInFlightHead(t *testing.T) {
	var s eventSpool
	const max = 4
	for i := 0; i < max; i++ {
		s.add(rec(i), max)
	}
	if !s.beginDrain() {
		t.Fatal("beginDrain refused")
	}
	head, ok := s.peek()
	if !ok || head.EventID != "e0000" {
		t.Fatalf("peek = %v %v, want e0000", head, ok)
	}
	// Overflow arrives while e0000 is in flight: the eviction must take
	// the oldest undrained record (e0001), never the in-flight head.
	s.add(rec(max), max)
	if got, _ := s.peek(); got.EventID != "e0000" {
		t.Fatalf("in-flight head evicted: peek = %s, want e0000", got.EventID)
	}
	s.pop() // e0000 delivered
	if pending := s.endDrain(); pending != max-1 {
		t.Fatalf("endDrain pending = %d, want %d", pending, max-1)
	}
	delivered, dropped := s.stats()
	if delivered != 1 || dropped != 1 {
		t.Fatalf("stats = (%d delivered, %d dropped), want (1, 1)", delivered, dropped)
	}
	// Remaining order: e0002, e0003, e0004 — FIFO with the overflow
	// victim (e0001) gone and the mid-drain arrival merged at the tail.
	want := []string{"e0002", "e0003", "e0004"}
	for _, w := range want {
		got, ok := s.peek()
		if !ok || got.EventID != w {
			t.Fatalf("drain order: got %v %v, want %s", got, ok, w)
		}
		s.pop()
	}
	if s.size() != 0 {
		t.Fatalf("spool not empty: %d", s.size())
	}
}

// TestSpoolLiveArrivalsMergeInOrder checks that events added mid-drain
// are buffered aside and merged back in arrival order, after every
// record that was already spooled.
func TestSpoolLiveArrivalsMergeInOrder(t *testing.T) {
	var s eventSpool
	const max = 16
	s.add(rec(0), max)
	s.add(rec(1), max)
	if !s.beginDrain() {
		t.Fatal("beginDrain refused")
	}
	s.add(rec(2), max)
	s.add(rec(3), max)
	// Mid-drain arrivals are invisible to peek/pop until merged...
	s.pop()
	s.pop()
	if _, ok := s.peek(); ok {
		t.Fatal("live records visible before endDrain merge")
	}
	// ...but counted by size, so reconnect triggers see the backlog.
	if s.size() != 2 {
		t.Fatalf("size = %d, want 2", s.size())
	}
	if pending := s.endDrain(); pending != 2 {
		t.Fatalf("endDrain pending = %d, want 2", pending)
	}
	for _, w := range []string{"e0002", "e0003"} {
		got, ok := s.peek()
		if !ok || got.EventID != w {
			t.Fatalf("merged order: got %v %v, want %s", got, ok, w)
		}
		s.pop()
	}
}

// TestSpoolDrainOverflowSpillsLive checks the overflow cascade while
// draining: buf's undrained tail empties first, then the live buffer's
// head, and with max=1 the arrival itself is the casualty.
func TestSpoolDrainOverflowSpillsLive(t *testing.T) {
	var s eventSpool
	s.add(rec(0), 2)
	s.add(rec(1), 2)
	if !s.beginDrain() {
		t.Fatal("beginDrain refused")
	}
	s.add(rec(2), 2) // evicts e0001 (oldest undrained)
	s.add(rec(3), 2) // evicts e0002 (live head)
	if _, dropped := s.stats(); dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	s.pop()
	s.endDrain()
	if got, _ := s.peek(); got.EventID != "e0003" {
		t.Fatalf("survivor = %s, want e0003", got.EventID)
	}

	var one eventSpool
	one.add(rec(0), 1)
	if !one.beginDrain() {
		t.Fatal("beginDrain refused")
	}
	one.add(rec(1), 1) // only the in-flight head remains: arrival dropped
	if got, _ := one.peek(); got.EventID != "e0000" {
		t.Fatalf("in-flight head = %s, want e0000", got.EventID)
	}
	if _, dropped := one.stats(); dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
}

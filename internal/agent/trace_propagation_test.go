package agent_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ofmf/internal/agent"
	"ofmf/internal/agent/fabagent"
	"ofmf/internal/emul/fabsim"
	"ofmf/internal/obsv"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
)

// TestTracePropagationAcrossThreeServers proves one trace id survives
// every HTTP edge of a distributed deployment: a traced client request
// hits the OFMF, the OFMF forwards the fabric mutation to a standalone
// agent's ops server, and the resulting event is delivered to an HTTP
// event sink — three real HTTP servers, one trace.
func TestTracePropagationAcrossThreeServers(t *testing.T) {
	// Server one: the OFMF.
	ofmfTracer := obsv.NewTracer(obsv.NewRegistry(), obsv.TracerOptions{})
	svc := service.New(service.Config{Tracer: ofmfTracer})
	ofmfSrv := httptest.NewServer(svc.Handler())
	defer func() {
		ofmfSrv.Close()
		svc.Close()
	}()

	// Server two: the agent's ops endpoint, instrumented with its own
	// tracer exactly like cmd/ofmf-agent.
	agentTracer := obsv.NewTracer(obsv.NewRegistry(), obsv.TracerOptions{})
	remote := &agent.Remote{BaseURL: ofmfSrv.URL}
	opsSrv := httptest.NewServer(obsv.Middleware(remote.Handler(), nil, nil,
		func(string) string { return "AgentOps" }, agentTracer))
	defer opsSrv.Close()
	remote.CallbackURL = opsSrv.URL

	fab := fabsim.New()
	if _, err := fabsim.BuildStar(fab, "h", 3, 100); err != nil {
		t.Fatal(err)
	}
	ag := fabagent.New(remote, fab, "IB", redfish.ProtocolInfiniBand)
	if err := ag.Start(); err != nil {
		t.Fatal(err)
	}

	// Server three: an HTTP event sink, recording delivery headers.
	sinkHeaders := make(chan string, 64)
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sinkHeaders <- r.Header.Get(obsv.TraceparentHeader)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer sink.Close()
	subBody, _ := json.Marshal(map[string]any{"Destination": sink.URL})
	resp, err := http.Post(ofmfSrv.URL+string(service.SubscriptionsURI), "application/json", bytes.NewReader(subBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscription POST = %d", resp.StatusCode)
	}

	// The traced request: a client with an existing trace creates a zone
	// in the agent-owned fabric.
	root := obsv.SpanContext{TraceID: strings.Repeat("42", 16), SpanID: strings.Repeat("17", 8)}
	zoneBody, _ := json.Marshal(redfish.Zone{
		Links: redfish.ZoneLinks{Endpoints: []odata.Ref{
			odata.NewRef(ag.FabricID().Append("Endpoints", "h0")),
			odata.NewRef(ag.FabricID().Append("Endpoints", "h1")),
		}},
	})
	req, _ := http.NewRequest(http.MethodPost, ofmfSrv.URL+string(ag.FabricID().Append("Zones")), bytes.NewReader(zoneBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obsv.TraceparentHeader, root.Traceparent())
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("zone POST = %d", resp.StatusCode)
	}

	// The OFMF recorded the request under the client's trace id.
	find := func(tr *obsv.Tracer, prefix string) (obsv.SpanRecord, bool) {
		for _, r := range tr.Dump() {
			if r.TraceID == root.TraceID && strings.HasPrefix(r.Name, prefix) {
				return r, true
			}
		}
		return obsv.SpanRecord{}, false
	}
	ofmfSpan, ok := find(ofmfTracer, "http.")
	if !ok {
		t.Fatalf("no OFMF http span with trace %s in %+v", root.TraceID, ofmfTracer.Dump())
	}
	if ofmfSpan.ParentID != root.SpanID {
		t.Errorf("OFMF span parent = %s, want the client's span %s", ofmfSpan.ParentID, root.SpanID)
	}

	// The agent's ops server joined the same trace (poll briefly: its
	// middleware finishes the span concurrently with the OFMF response).
	deadline := time.Now().Add(5 * time.Second)
	var agentSpan obsv.SpanRecord
	for {
		if sp, ok := find(agentTracer, "http.AgentOps"); ok {
			agentSpan = sp
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no agent span with trace %s in %+v", root.TraceID, agentTracer.Dump())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if agentSpan.ParentID == "" {
		t.Error("agent span has no parent; traceparent did not cross the forwarding edge")
	}

	// The event sink received a delivery carrying the same trace id.
	for {
		select {
		case tp := <-sinkHeaders:
			sc, ok := obsv.ParseTraceparent(tp)
			if ok && sc.TraceID == root.TraceID {
				return // one trace id across all three servers
			}
		case <-time.After(5 * time.Second):
			t.Fatal("no event delivery carried the client's trace id")
		}
	}
}

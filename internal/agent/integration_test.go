package agent_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"ofmf/internal/agent"
	"ofmf/internal/agent/cxlagent"
	"ofmf/internal/agent/fabagent"
	"ofmf/internal/agent/gpuagent"
	"ofmf/internal/agent/nvmeagent"
	"ofmf/internal/emul/cxlsim"
	"ofmf/internal/emul/fabsim"
	"ofmf/internal/emul/gpusim"
	"ofmf/internal/emul/nvmesim"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
)

// testbed assembles an in-process OFMF with an HTTP front end.
type testbed struct {
	svc *service.Service
	srv *httptest.Server
}

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	svc := service.New(service.Config{})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return &testbed{svc: svc, srv: srv}
}

func (tb *testbed) registerCollections(t *testing.T, colls map[odata.ID][2]string) {
	t.Helper()
	for uri, meta := range colls {
		tb.svc.Store().RegisterCollection(uri, meta[0], meta[1])
	}
}

func (tb *testbed) do(t *testing.T, method, path string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, tb.srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func newCXLAppliance(t *testing.T) *cxlsim.Appliance {
	t.Helper()
	app := cxlsim.New(cxlsim.WithoutSleep())
	if err := app.AddDevice("dev0", 65536, "DRAM"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"node1", "node2"} {
		if err := app.AddPort(p); err != nil {
			t.Fatal(err)
		}
	}
	return app
}

func TestCXLAgentEndToEnd(t *testing.T) {
	tb := newTestbed(t)
	app := newCXLAppliance(t)
	ag := cxlagent.New(&agent.Local{Service: tb.svc}, app, "CXL", "CXLMemoryAppliance")
	tb.registerCollections(t, ag.Collections())
	if err := ag.Start(); err != nil {
		t.Fatal(err)
	}

	// The aggregated tree serves the fabric and appliance.
	resp, body := tb.do(t, http.MethodGet, "/redfish/v1/Fabrics/CXL", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fabric GET = %d: %s", resp.StatusCode, body)
	}
	resp, _ = tb.do(t, http.MethodGet, "/redfish/v1/Chassis/CXLMemoryAppliance/Memory/dev0", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("memory GET = %d", resp.StatusCode)
	}

	// Carve a chunk via Redfish POST.
	chunksColl := "/redfish/v1/Chassis/CXLMemoryAppliance/MemoryDomains/Domain0/MemoryChunks"
	resp, body = tb.do(t, http.MethodPost, chunksColl, map[string]any{"MemoryChunkSizeMiB": 8192})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("chunk POST = %d: %s", resp.StatusCode, body)
	}
	var chunk redfish.MemoryChunks
	if err := json.Unmarshal(body, &chunk); err != nil {
		t.Fatal(err)
	}
	if chunk.MemoryChunkSizeMiB != 8192 {
		t.Errorf("chunk size = %d", chunk.MemoryChunkSizeMiB)
	}
	if app.FreeMiB() != 65536-8192 {
		t.Errorf("appliance free = %d", app.FreeMiB())
	}

	// Attach the chunk to node1 via a Connection.
	resp, body = tb.do(t, http.MethodPost, "/redfish/v1/Fabrics/CXL/Connections", redfish.Connection{
		MemoryChunkInfo: []redfish.MemoryChunkInfo{{
			AccessCapabilities: []string{"Read", "Write"},
			MemoryChunk:        redfish.Ref(chunk.ODataID),
		}},
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{odata.NewRef("/redfish/v1/Fabrics/CXL/Endpoints/node1")},
		},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("connection POST = %d: %s", resp.StatusCode, body)
	}
	var conn redfish.Connection
	if err := json.Unmarshal(body, &conn); err != nil {
		t.Fatal(err)
	}
	chunks := app.Chunks()
	if len(chunks) != 1 || len(chunks[0].BoundPorts()) != 1 || chunks[0].BoundPorts()[0] != "node1" {
		t.Fatalf("appliance state = %+v", chunks)
	}

	// The republished chunk resource shows the binding.
	resp, body = tb.do(t, http.MethodGet, string(chunk.ODataID), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk GET = %d", resp.StatusCode)
	}
	var chunkNow redfish.MemoryChunks
	if err := json.Unmarshal(body, &chunkNow); err != nil {
		t.Fatal(err)
	}
	if len(chunkNow.Links.Endpoints) != 1 {
		t.Errorf("chunk links = %+v", chunkNow.Links)
	}

	// Deleting the connection unbinds; deleting the chunk releases.
	resp, _ = tb.do(t, http.MethodDelete, string(conn.ODataID), nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("connection DELETE = %d", resp.StatusCode)
	}
	if got := app.Chunks()[0].BoundPorts(); len(got) != 0 {
		t.Errorf("still bound: %v", got)
	}
	resp, _ = tb.do(t, http.MethodDelete, string(chunk.ODataID), nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("chunk DELETE = %d", resp.StatusCode)
	}
	if app.FreeMiB() != 65536 {
		t.Errorf("free after release = %d", app.FreeMiB())
	}
}

func TestCXLAgentRejectsOversizedChunk(t *testing.T) {
	tb := newTestbed(t)
	app := newCXLAppliance(t)
	ag := cxlagent.New(&agent.Local{Service: tb.svc}, app, "CXL", "CXLMemoryAppliance")
	tb.registerCollections(t, ag.Collections())
	if err := ag.Start(); err != nil {
		t.Fatal(err)
	}
	resp, body := tb.do(t, http.MethodPost,
		"/redfish/v1/Chassis/CXLMemoryAppliance/MemoryDomains/Domain0/MemoryChunks",
		map[string]any{"MemoryChunkSizeMiB": 1 << 30})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	// Collection remains empty.
	members, err := tb.svc.Store().Members(odata.ID("/redfish/v1/Chassis/CXLMemoryAppliance/MemoryDomains/Domain0/MemoryChunks"))
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 0 {
		t.Errorf("members = %v", members)
	}
}

func TestNVMeAgentEndToEnd(t *testing.T) {
	tb := newTestbed(t)
	target := nvmesim.New()
	if err := target.AddPool("pool0", 1<<40); err != nil {
		t.Fatal(err)
	}
	ag := nvmeagent.New(&agent.Local{Service: tb.svc}, target, "NVMe", "JBOF1")
	tb.registerCollections(t, ag.Collections())
	ag.RegisterHost("node1")
	if err := ag.Start(); err != nil {
		t.Fatal(err)
	}

	// Provision a volume.
	resp, body := tb.do(t, http.MethodPost, "/redfish/v1/Storage/JBOF1/Volumes",
		map[string]any{"CapacityBytes": 1 << 30})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("volume POST = %d: %s", resp.StatusCode, body)
	}
	var vol redfish.Volume
	if err := json.Unmarshal(body, &vol); err != nil {
		t.Fatal(err)
	}

	// Connect node1 to the volume.
	resp, body = tb.do(t, http.MethodPost, "/redfish/v1/Fabrics/NVMe/Connections", redfish.Connection{
		VolumeInfo: []redfish.VolumeInfo{{Volume: redfish.Ref(vol.ODataID)}},
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{odata.NewRef("/redfish/v1/Fabrics/NVMe/Endpoints/node1")},
		},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("connection POST = %d: %s", resp.StatusCode, body)
	}
	var conn redfish.Connection
	if err := json.Unmarshal(body, &conn); err != nil {
		t.Fatal(err)
	}
	// Target state: volume attached, host connected.
	vols := target.Volumes()
	if len(vols) != 1 || vols[0].Subsystem == "" {
		t.Fatalf("volumes = %+v", vols)
	}
	sub, err := target.SubsystemInfo(vols[0].Subsystem)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Hosts()) != 1 {
		t.Errorf("hosts = %v", sub.Hosts())
	}

	// Tear down.
	resp, _ = tb.do(t, http.MethodDelete, string(conn.ODataID), nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("connection DELETE = %d", resp.StatusCode)
	}
	vols = target.Volumes()
	if vols[0].Subsystem != "" {
		t.Error("volume still attached after connection delete")
	}
	resp, _ = tb.do(t, http.MethodDelete, string(vol.ODataID), nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("volume DELETE = %d", resp.StatusCode)
	}
	if len(target.Volumes()) != 0 {
		t.Error("volume survived delete")
	}
}

func TestFabAgentLinkFailureEventAndPatch(t *testing.T) {
	tb := newTestbed(t)
	fab := fabsim.New()
	if _, err := fabsim.BuildFatTree(fab, "n", 2, 2, 2, 100, 400); err != nil {
		t.Fatal(err)
	}
	ag := fabagent.New(&agent.Local{Service: tb.svc}, fab, "IB", redfish.ProtocolInfiniBand)
	tb.registerCollections(t, ag.Collections())
	if err := ag.Start(); err != nil {
		t.Fatal(err)
	}

	// Ports are visible with LinkUp.
	resp, body := tb.do(t, http.MethodGet, "/redfish/v1/Fabrics/IB/Switches/leaf0/Ports/spine0", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("port GET = %d: %s", resp.StatusCode, body)
	}
	var port redfish.Port
	if err := json.Unmarshal(body, &port); err != nil {
		t.Fatal(err)
	}
	if port.LinkStatus != "LinkUp" {
		t.Errorf("LinkStatus = %s", port.LinkStatus)
	}

	// PATCH LinkState=Disabled fails the link in hardware and the tree.
	resp, body = tb.do(t, http.MethodPatch, "/redfish/v1/Fabrics/IB/Switches/leaf0/Ports/spine0",
		map[string]any{"LinkState": "Disabled"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("port PATCH = %d: %s", resp.StatusCode, body)
	}
	l, err := fab.Link("leaf0", "spine0")
	if err != nil {
		t.Fatal(err)
	}
	if l.Up() {
		t.Error("link still up after PATCH")
	}
	resp, body = tb.do(t, http.MethodGet, "/redfish/v1/Fabrics/IB/Switches/leaf0/Ports/spine0", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("port GET = %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &port); err != nil {
		t.Fatal(err)
	}
	if port.LinkStatus != "LinkDown" {
		t.Errorf("published LinkStatus = %s", port.LinkStatus)
	}

	// Restore.
	resp, _ = tb.do(t, http.MethodPatch, "/redfish/v1/Fabrics/IB/Switches/leaf0/Ports/spine0",
		map[string]any{"LinkState": "Enabled"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore PATCH = %d", resp.StatusCode)
	}
	l, _ = fab.Link("leaf0", "spine0")
	if !l.Up() {
		t.Error("link not restored")
	}
}

func TestFabAgentZonesAndConnections(t *testing.T) {
	tb := newTestbed(t)
	fab := fabsim.New()
	if _, err := fabsim.BuildStar(fab, "h", 3, 100); err != nil {
		t.Fatal(err)
	}
	ag := fabagent.New(&agent.Local{Service: tb.svc}, fab, "IB", redfish.ProtocolInfiniBand)
	tb.registerCollections(t, ag.Collections())
	if err := ag.Start(); err != nil {
		t.Fatal(err)
	}

	// Create a zone of h0,h1.
	resp, body := tb.do(t, http.MethodPost, "/redfish/v1/Fabrics/IB/Zones", redfish.Zone{
		Links: redfish.ZoneLinks{Endpoints: []odata.Ref{
			odata.NewRef("/redfish/v1/Fabrics/IB/Endpoints/h0"),
			odata.NewRef("/redfish/v1/Fabrics/IB/Endpoints/h1"),
		}},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("zone POST = %d: %s", resp.StatusCode, body)
	}
	var zone redfish.Zone
	if err := json.Unmarshal(body, &zone); err != nil {
		t.Fatal(err)
	}
	if got := len(fab.Zones()); got != 1 {
		t.Fatalf("fabric zones = %d", got)
	}

	// A connection within the zone succeeds.
	resp, body = tb.do(t, http.MethodPost, "/redfish/v1/Fabrics/IB/Connections", redfish.Connection{
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{odata.NewRef("/redfish/v1/Fabrics/IB/Endpoints/h0")},
			TargetEndpoints:    []odata.Ref{odata.NewRef("/redfish/v1/Fabrics/IB/Endpoints/h1")},
		},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("connection POST = %d: %s", resp.StatusCode, body)
	}
	if got := len(fab.Flows()); got != 1 {
		t.Errorf("flows = %d", got)
	}

	// A connection crossing the zone boundary is rejected.
	resp, body = tb.do(t, http.MethodPost, "/redfish/v1/Fabrics/IB/Connections", redfish.Connection{
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{odata.NewRef("/redfish/v1/Fabrics/IB/Endpoints/h0")},
			TargetEndpoints:    []odata.Ref{odata.NewRef("/redfish/v1/Fabrics/IB/Endpoints/h2")},
		},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cross-zone POST = %d: %s", resp.StatusCode, body)
	}

	// Deleting the zone restores the open fabric.
	resp, _ = tb.do(t, http.MethodDelete, string(zone.ODataID), nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("zone DELETE = %d", resp.StatusCode)
	}
	if got := len(fab.Zones()); got != 0 {
		t.Errorf("fabric zones = %d", got)
	}
}

func TestGPUAgentEndToEnd(t *testing.T) {
	tb := newTestbed(t)
	pool := gpusim.New()
	if err := pool.AddGPU("gpu0", "A100", 40960, 7); err != nil {
		t.Fatal(err)
	}
	ag := gpuagent.New(&agent.Local{Service: tb.svc}, pool, "PCIe", "GPUPool")
	tb.registerCollections(t, ag.Collections())
	if err := ag.Start(); err != nil {
		t.Fatal(err)
	}

	// Carve a 2-slice partition.
	resp, body := tb.do(t, http.MethodPost, "/redfish/v1/Chassis/GPUPool/Processors",
		map[string]any{"Oem": map[string]any{"OFMF": map[string]any{"Slices": 2}}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("partition POST = %d: %s", resp.StatusCode, body)
	}
	var part redfish.Processor
	if err := json.Unmarshal(body, &part); err != nil {
		t.Fatal(err)
	}
	if pool.FreeSlices() != 5 {
		t.Errorf("free slices = %d", pool.FreeSlices())
	}

	// Attach to node1.
	resp, body = tb.do(t, http.MethodPost, "/redfish/v1/Fabrics/PCIe/Connections", redfish.Connection{
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{odata.NewRef("/redfish/v1/Systems/node1")},
			TargetEndpoints:    []odata.Ref{odata.NewRef(odata.ID("/redfish/v1/Fabrics/PCIe/Endpoints").Append(part.ODataID.Leaf()))},
		},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("connection POST = %d: %s", resp.StatusCode, body)
	}
	var conn redfish.Connection
	if err := json.Unmarshal(body, &conn); err != nil {
		t.Fatal(err)
	}
	parts := pool.Partitions()
	if len(parts) != 1 || parts[0].Host != "node1" {
		t.Fatalf("partitions = %+v", parts)
	}

	// Detach and delete.
	resp, _ = tb.do(t, http.MethodDelete, string(conn.ODataID), nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("connection DELETE = %d", resp.StatusCode)
	}
	resp, _ = tb.do(t, http.MethodDelete, string(part.ODataID), nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("partition DELETE = %d", resp.StatusCode)
	}
	if pool.FreeSlices() != 7 {
		t.Errorf("free slices = %d", pool.FreeSlices())
	}
}

// TestRemoteFabAgentAllOps exercises every forwarded operation over the
// HTTP agent protocol — zone create/delete, connection create/delete,
// port patch — against an out-of-process fabric agent.
func TestRemoteFabAgentAllOps(t *testing.T) {
	tb := newTestbed(t)
	fab := fabsim.New()
	if _, err := fabsim.BuildStar(fab, "h", 3, 100); err != nil {
		t.Fatal(err)
	}
	remote := &agent.Remote{BaseURL: tb.srv.URL}
	opsSrv := httptest.NewServer(remote.Handler())
	defer opsSrv.Close()
	remote.CallbackURL = opsSrv.URL

	ag := fabagent.New(remote, fab, "IB", redfish.ProtocolInfiniBand)
	if err := ag.Start(); err != nil {
		t.Fatal(err)
	}
	fabric := ag.FabricID()
	ep := func(n string) odata.Ref { return odata.NewRef(fabric.Append("Endpoints", n)) }

	// Zone.
	resp, body := tb.do(t, http.MethodPost, string(fabric.Append("Zones")), redfish.Zone{
		Links: redfish.ZoneLinks{Endpoints: []odata.Ref{ep("h0"), ep("h1")}},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("zone POST = %d: %s", resp.StatusCode, body)
	}
	var zone redfish.Zone
	if err := json.Unmarshal(body, &zone); err != nil {
		t.Fatal(err)
	}
	if len(fab.Zones()) != 1 {
		t.Fatalf("zones = %d", len(fab.Zones()))
	}

	// Connection within the zone.
	resp, body = tb.do(t, http.MethodPost, string(fabric.Append("Connections")), redfish.Connection{
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{ep("h0")},
			TargetEndpoints:    []odata.Ref{ep("h1")},
		},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("connection POST = %d: %s", resp.StatusCode, body)
	}
	var conn redfish.Connection
	if err := json.Unmarshal(body, &conn); err != nil {
		t.Fatal(err)
	}
	if len(fab.Flows()) != 1 {
		t.Fatalf("flows = %d", len(fab.Flows()))
	}

	// Cross-zone connection rejected end to end.
	resp, _ = tb.do(t, http.MethodPost, string(fabric.Append("Connections")), redfish.Connection{
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{ep("h0")},
			TargetEndpoints:    []odata.Ref{ep("h2")},
		},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cross-zone POST = %d", resp.StatusCode)
	}

	// Patch a port down and back up.
	port := fabric.Append("Switches", "sw0", "Ports", "h2")
	resp, _ = tb.do(t, http.MethodPatch, string(port), map[string]any{"LinkState": "Disabled"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch = %d", resp.StatusCode)
	}
	l, _ := fab.Link("sw0", "h2")
	if l.Up() {
		t.Error("link still up after remote patch")
	}
	resp, _ = tb.do(t, http.MethodPatch, string(port), map[string]any{"LinkState": "Enabled"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore patch = %d", resp.StatusCode)
	}
	// Unsupported patch rejected through the wire.
	resp, _ = tb.do(t, http.MethodPatch, string(fabric.Append("Endpoints", "h0")), map[string]any{"Name": "x"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unsupported patch = %d", resp.StatusCode)
	}

	// Teardown: connection then zone, both forwarded.
	resp, _ = tb.do(t, http.MethodDelete, string(conn.ODataID), nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("connection DELETE = %d", resp.StatusCode)
	}
	if len(fab.Flows()) != 0 {
		t.Error("flow survived remote delete")
	}
	resp, _ = tb.do(t, http.MethodDelete, string(zone.ODataID), nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("zone DELETE = %d", resp.StatusCode)
	}
	if len(fab.Zones()) != 0 {
		t.Error("zone survived remote delete")
	}
}

// TestRemoteDeprovision exercises DeleteResource over the HTTP agent
// protocol.
func TestRemoteDeprovision(t *testing.T) {
	tb := newTestbed(t)
	app := newCXLAppliance(t)
	remote := &agent.Remote{BaseURL: tb.srv.URL}
	opsSrv := httptest.NewServer(remote.Handler())
	defer opsSrv.Close()
	remote.CallbackURL = opsSrv.URL
	ag := cxlagent.New(remote, app, "CXL", "CXLMemoryAppliance")
	if err := ag.Start(); err != nil {
		t.Fatal(err)
	}
	chunks := "/redfish/v1/Chassis/CXLMemoryAppliance/MemoryDomains/Domain0/MemoryChunks"
	resp, body := tb.do(t, http.MethodPost, chunks, map[string]any{"MemoryChunkSizeMiB": 128})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST = %d: %s", resp.StatusCode, body)
	}
	var chunk redfish.MemoryChunks
	if err := json.Unmarshal(body, &chunk); err != nil {
		t.Fatal(err)
	}
	resp, _ = tb.do(t, http.MethodDelete, string(chunk.ODataID), nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	if app.FreeMiB() != 65536 {
		t.Errorf("free = %d", app.FreeMiB())
	}
}

// TestRemoteAgentEndToEnd runs the CXL agent out of process: the agent
// talks to the OFMF over HTTP and receives forwarded operations on its own
// ops server, exactly as a standalone deployment would.
func TestRemoteAgentEndToEnd(t *testing.T) {
	tb := newTestbed(t)
	app := newCXLAppliance(t)

	remote := &agent.Remote{BaseURL: tb.srv.URL}
	opsSrv := httptest.NewServer(remote.Handler())
	defer opsSrv.Close()
	remote.CallbackURL = opsSrv.URL

	ag := cxlagent.New(remote, app, "CXL", "CXLMemoryAppliance")
	tb.registerCollections(t, ag.Collections())
	if err := ag.Start(); err != nil {
		t.Fatal(err)
	}

	// The aggregation source is registered with the callback URL.
	members, err := tb.svc.Store().Members(service.AggregationSourcesURI)
	if err != nil || len(members) != 1 {
		t.Fatalf("sources = %v, %v", members, err)
	}
	var src redfish.AggregationSource
	if err := tb.svc.Store().GetAs(members[0], &src); err != nil {
		t.Fatal(err)
	}
	if src.HostName != opsSrv.URL {
		t.Errorf("HostName = %s", src.HostName)
	}

	// Full provisioning flow over HTTP.
	resp, body := tb.do(t, http.MethodPost,
		"/redfish/v1/Chassis/CXLMemoryAppliance/MemoryDomains/Domain0/MemoryChunks",
		map[string]any{"MemoryChunkSizeMiB": 4096})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("chunk POST = %d: %s", resp.StatusCode, body)
	}
	var chunk redfish.MemoryChunks
	if err := json.Unmarshal(body, &chunk); err != nil {
		t.Fatal(err)
	}
	resp, body = tb.do(t, http.MethodPost, "/redfish/v1/Fabrics/CXL/Connections", redfish.Connection{
		MemoryChunkInfo: []redfish.MemoryChunkInfo{{MemoryChunk: redfish.Ref(chunk.ODataID)}},
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{odata.NewRef("/redfish/v1/Fabrics/CXL/Endpoints/node2")},
		},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("connection POST = %d: %s", resp.StatusCode, body)
	}
	chunks := app.Chunks()
	if len(chunks) != 1 || len(chunks[0].BoundPorts()) != 1 || chunks[0].BoundPorts()[0] != "node2" {
		t.Fatalf("appliance state = %+v", chunks)
	}
}

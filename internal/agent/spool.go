package agent

import (
	"sync"

	"ofmf/internal/redfish"
)

// defaultSpoolSize bounds the undelivered-event spool when the Remote
// does not configure one.
const defaultSpoolSize = 1024

// eventSpool is a bounded FIFO of event records awaiting delivery to
// the OFMF. When the management path is down, records accumulate here
// instead of vanishing; when the spool is full the oldest record is
// dropped (and counted) so the newest hardware state wins.
type eventSpool struct {
	mu        sync.Mutex
	max       int
	buf       []redfish.EventRecord
	dropped   int64
	delivered int64
	draining  bool
}

// add enqueues rec, evicting the oldest record when the spool is full.
func (s *eventSpool) add(rec redfish.EventRecord, max int) {
	if max <= 0 {
		max = defaultSpoolSize
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.max = max
	if len(s.buf) >= s.max {
		s.buf = s.buf[1:]
		s.dropped++
	}
	s.buf = append(s.buf, rec)
}

// peek returns the head-of-line record without removing it.
func (s *eventSpool) peek() (redfish.EventRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) == 0 {
		return redfish.EventRecord{}, false
	}
	return s.buf[0], true
}

// pop removes the head-of-line record after a successful delivery.
func (s *eventSpool) pop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) > 0 {
		s.buf = s.buf[1:]
		s.delivered++
	}
}

// beginDrain claims the single-drainer slot; endDrain releases it.
// Only one goroutine walks the spool at a time, so delivery stays FIFO.
func (s *eventSpool) beginDrain() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.draining = true
	return true
}

func (s *eventSpool) endDrain() {
	s.mu.Lock()
	s.draining = false
	s.mu.Unlock()
}

// size returns the number of records awaiting delivery.
func (s *eventSpool) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// stats returns the delivered and dropped counters.
func (s *eventSpool) stats() (delivered, dropped int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered, s.dropped
}

package agent

import (
	"sync"

	"ofmf/internal/redfish"
)

// defaultSpoolSize bounds the undelivered-event spool when the Remote
// does not configure one.
const defaultSpoolSize = 1024

// eventSpool is a bounded FIFO of event records awaiting delivery to
// the OFMF. When the management path is down, records accumulate here
// instead of vanishing; when the spool is full the oldest record is
// dropped (and counted) so the newest hardware state wins.
//
// While a drain is in flight the drainer holds a positional claim on
// buf[0] (peek, POST, pop). Events arriving mid-drain therefore go to
// the live side-buffer instead of buf: an eviction from buf at that
// moment would either drop the very record the drainer has in flight
// (double-accounted as both dropped and delivered) or shift the queue
// under the drainer's feet so pop removes the wrong record and a later
// event is delivered twice while an earlier one is lost. endDrain
// merges the side-buffer back, preserving arrival order.
type eventSpool struct {
	mu        sync.Mutex
	max       int
	buf       []redfish.EventRecord
	live      []redfish.EventRecord // arrivals while draining
	dropped   int64
	delivered int64
	draining  bool
}

// add enqueues rec, evicting the oldest *undrained* record when the
// spool is full. During a drain the eviction comes from the live
// side-buffer's head, never from buf, so the drainer's in-flight head
// record stays where pop expects it.
func (s *eventSpool) add(rec redfish.EventRecord, max int) {
	if max <= 0 {
		max = defaultSpoolSize
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.max = max
	if s.draining {
		if len(s.buf)+len(s.live) >= s.max {
			switch {
			case len(s.buf) > 1:
				// Oldest undrained record. buf[0] is the drainer's
				// in-flight claim and must stay put for pop.
				s.buf = append(s.buf[:1], s.buf[2:]...)
			case len(s.live) > 0:
				s.live = s.live[1:]
			default:
				// Only the in-flight head remains (max == 1): the
				// arrival itself is the overflow.
				s.dropped++
				return
			}
			s.dropped++
		}
		s.live = append(s.live, rec)
		return
	}
	if len(s.buf) >= s.max {
		s.buf = s.buf[1:]
		s.dropped++
	}
	s.buf = append(s.buf, rec)
}

// peek returns the head-of-line record without removing it.
func (s *eventSpool) peek() (redfish.EventRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) == 0 {
		return redfish.EventRecord{}, false
	}
	return s.buf[0], true
}

// pop removes the head-of-line record after a successful delivery.
func (s *eventSpool) pop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) > 0 {
		s.buf = s.buf[1:]
		s.delivered++
	}
}

// beginDrain claims the single-drainer slot; endDrain releases it.
// Only one goroutine walks the spool at a time, so delivery stays FIFO.
func (s *eventSpool) beginDrain() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.draining = true
	return true
}

// endDrain releases the drainer slot and merges records that arrived
// mid-drain back into the FIFO, in arrival order. It returns the number
// of records still awaiting delivery so the drainer can notice that new
// work arrived while it was finishing and go around again.
func (s *eventSpool) endDrain() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = false
	if len(s.live) > 0 {
		s.buf = append(s.buf, s.live...)
		s.live = nil
	}
	return len(s.buf)
}

// reset discards every buffered record, counting them as dropped. It
// models a process crash: the in-memory spool dies with the agent.
func (s *eventSpool) reset() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.buf) + len(s.live)
	s.dropped += int64(n)
	s.buf, s.live = nil, nil
	return n
}

// size returns the number of records awaiting delivery.
func (s *eventSpool) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf) + len(s.live)
}

// stats returns the delivered and dropped counters.
func (s *eventSpool) stats() (delivered, dropped int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered, s.dropped
}

package agent_test

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ofmf/internal/agent"
	"ofmf/internal/agent/cxlagent"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
)

func heartbeatOf(t *testing.T, svc *service.Service, ag *cxlagent.Agent) string {
	t.Helper()
	var src redfish.AggregationSource
	if err := svc.Store().GetAs(ag.SourceURI(), &src); err != nil {
		t.Fatal(err)
	}
	if src.Oem.OFMF == nil {
		t.Fatal("missing OFMF descriptor")
	}
	return src.Oem.OFMF.LastHeartbeat
}

func TestHeartbeatLocal(t *testing.T) {
	tb := newTestbed(t)
	app := newCXLAppliance(t)
	conn := &agent.Local{Service: tb.svc}
	ag := cxlagent.New(conn, app, "CXL", "CXLMemoryAppliance")
	tb.registerCollections(t, ag.Collections())
	if err := ag.Start(); err != nil {
		t.Fatal(err)
	}
	if got := heartbeatOf(t, tb.svc, ag); got != "" {
		t.Errorf("initial heartbeat = %q", got)
	}
	stop := agent.StartHeartbeat(conn, ag.SourceURI(), 3*time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for heartbeatOf(t, tb.svc, ag) == "" {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never refreshed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	// Timestamp parses as RFC3339.
	if _, err := time.Parse(time.RFC3339, heartbeatOf(t, tb.svc, ag)); err != nil {
		t.Errorf("bad timestamp: %v", err)
	}
}

func TestHeartbeatRemote(t *testing.T) {
	tb := newTestbed(t)
	app := newCXLAppliance(t)
	remote := &agent.Remote{BaseURL: tb.srv.URL}
	opsSrv := httptest.NewServer(remote.Handler())
	defer opsSrv.Close()
	remote.CallbackURL = opsSrv.URL

	ag := cxlagent.New(remote, app, "CXL", "CXLMemoryAppliance")
	tb.registerCollections(t, ag.Collections())
	if err := ag.Start(); err != nil {
		t.Fatal(err)
	}
	// TouchSource travels over HTTP PATCH; the service must accept it even
	// without DirectWrites.
	if err := remote.TouchSource(ag.SourceURI(), "2023-05-15T00:00:00Z"); err != nil {
		t.Fatal(err)
	}
	if got := heartbeatOf(t, tb.svc, ag); got != "2023-05-15T00:00:00Z" {
		t.Errorf("heartbeat = %q", got)
	}
}

func TestAgentStopDetachesHandlers(t *testing.T) {
	tb := newTestbed(t)
	app := newCXLAppliance(t)
	ag := cxlagent.New(&agent.Local{Service: tb.svc}, app, "CXL", "CXLMemoryAppliance")
	if err := ag.Start(); err != nil {
		t.Fatal(err)
	}
	ag.Stop()
	// With handlers detached, fabric POSTs are no longer forwarded to
	// hardware: a connection that would previously bind is stored
	// verbatim (no DirectWrites needed since Connections POST is always
	// allowed) but nothing is bound.
	resp, _ := tb.do(t, http.MethodPost, "/redfish/v1/Fabrics/CXL/Connections", redfish.Connection{})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	binds, _ := app.Counters()
	if binds != 0 {
		t.Errorf("binds = %d after Stop", binds)
	}
}

// Package gpuagent implements the OFMF Agent for a pooled GPU appliance.
// It publishes the pool as a chassis holding accelerator Processor
// resources, provisions partitions via Processor POSTs, and realizes
// Connections as partition-to-host attachments.
package gpuagent

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"ofmf/internal/agent"
	"ofmf/internal/emul/gpusim"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
)

// Sentinel errors.
var (
	ErrUnknownPartition = errors.New("gpuagent: unknown partition")
	ErrBadConnection    = errors.New("gpuagent: connection must name one initiator endpoint and one partition")
	ErrUnsupported      = errors.New("gpuagent: unsupported operation")
)

// Agent is the GPU pool agent.
type Agent struct {
	conn agent.Conn
	pool *gpusim.Pool

	fabricID  odata.ID
	chassisID odata.ID

	// pubMu serializes Publish; see cxlagent.Agent.pubMu.
	pubMu sync.Mutex

	mu        sync.Mutex
	partByURI map[odata.ID]string
	conns     map[odata.ID]string // connection URI -> partition id
	eventSeq  int
	sourceURI odata.ID
}

// New creates a GPU pool agent.
func New(conn agent.Conn, pool *gpusim.Pool, fabricName, chassisName string) *Agent {
	return &Agent{
		conn:      conn,
		pool:      pool,
		fabricID:  service.FabricsURI.Append(fabricName),
		chassisID: service.ChassisURI.Append(chassisName),
		partByURI: make(map[odata.ID]string),
		conns:     make(map[odata.ID]string),
	}
}

// FabricID returns the fabric subtree root the agent owns.
func (a *Agent) FabricID() odata.ID { return a.fabricID }

// SourceURI returns the AggregationSource resource created at Start,
// used for heartbeat refreshes.
func (a *Agent) SourceURI() odata.ID {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sourceURI
}

// ChassisID returns the chassis subtree root the agent owns.
func (a *Agent) ChassisID() odata.ID { return a.chassisID }

// Start registers with the OFMF, attaches handlers and publishes.
func (a *Agent) Start() error {
	uri, err := a.conn.Register(redfish.AggregationSource{
		Resource: odata.Resource{Name: "GPU Agent (" + a.chassisID.Leaf() + ")"},
		Oem:      redfish.AggSourceOem{OFMF: &redfish.AgentDescriptor{Technology: "GPU", Version: "1.0"}},
		Links: redfish.AggSourceLinks{ResourcesAccessed: []odata.Ref{
			odata.NewRef(a.fabricID), odata.NewRef(a.chassisID),
		}},
	})
	if err != nil {
		return fmt.Errorf("gpuagent: register: %w", err)
	}
	a.mu.Lock()
	a.sourceURI = uri
	a.mu.Unlock()
	if err := a.conn.RegisterCollections(a.Collections()); err != nil {
		return fmt.Errorf("gpuagent: register collections: %w", err)
	}
	if err := a.conn.AttachHandler(a); err != nil {
		return err
	}
	if err := a.conn.AttachHandler(&subHandler{agent: a, prefix: a.chassisID}); err != nil {
		return err
	}
	a.pool.Subscribe(a.onHardwareEvent)
	return a.Publish()
}

// Stop detaches the agent's handlers.
func (a *Agent) Stop() {
	a.conn.DetachHandler(a.fabricID)
	a.conn.DetachHandler(a.chassisID)
}

type subHandler struct {
	agent  *Agent
	prefix odata.ID
}

func (s *subHandler) FabricID() odata.ID { return s.prefix }
func (s *subHandler) CreateConnection(c *redfish.Connection) error {
	return s.agent.CreateConnection(c)
}
func (s *subHandler) DeleteConnection(id odata.ID) error        { return s.agent.DeleteConnection(id) }
func (s *subHandler) CreateZone(z *redfish.Zone) error          { return s.agent.CreateZone(z) }
func (s *subHandler) DeleteZone(id odata.ID) error              { return s.agent.DeleteZone(id) }
func (s *subHandler) Patch(id odata.ID, p map[string]any) error { return s.agent.Patch(id, p) }
func (s *subHandler) CreateResource(coll, uri odata.ID, payload json.RawMessage) (any, error) {
	return s.agent.CreateResource(coll, uri, payload)
}
func (s *subHandler) DeleteResource(id odata.ID) error { return s.agent.DeleteResource(id) }

func (a *Agent) onHardwareEvent(ev gpusim.Event) {
	a.mu.Lock()
	a.eventSeq++
	id := fmt.Sprintf("gpu-%d", a.eventSeq)
	a.mu.Unlock()
	a.conn.PublishEvent(redfish.EventRecord{
		EventType: redfish.EventAlert,
		EventID:   id,
		Severity:  "OK",
		Message:   fmt.Sprintf("gpu pool: %s partition=%s host=%s", ev.Kind, ev.Partition, ev.Host),
		MessageID: "OFMF.1.0.GPU" + ev.Kind,
	})
}

// partitionRequest is the accepted payload for partition provisioning.
type partitionRequest struct {
	Oem struct {
		OFMF struct {
			Slices int    `json:"Slices"`
			GPU    string `json:"GPU"`
		} `json:"OFMF"`
	} `json:"Oem"`
}

// CreateResource provisions a GPU partition when the target collection is
// the agent's Processors collection.
func (a *Agent) CreateResource(coll, uri odata.ID, payload json.RawMessage) (any, error) {
	if coll != a.chassisID.Append("Processors") {
		return nil, fmt.Errorf("%w: POST %s", ErrUnsupported, coll)
	}
	var req partitionRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("gpuagent: bad partition request: %w", err)
	}
	slices := req.Oem.OFMF.Slices
	if slices < 1 {
		slices = 1
	}
	var partID string
	var err error
	if req.Oem.OFMF.GPU != "" {
		partID, err = a.pool.Carve(req.Oem.OFMF.GPU, slices)
	} else {
		partID, err = a.pool.CarveAny(slices)
	}
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.partByURI[uri] = partID
	a.mu.Unlock()
	res := a.partitionResource(uri, partID, slices, "")
	if err := a.Publish(); err != nil {
		return nil, err
	}
	return res, nil
}

// DeleteResource releases a GPU partition.
func (a *Agent) DeleteResource(id odata.ID) error {
	a.mu.Lock()
	partID, ok := a.partByURI[id]
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPartition, id)
	}
	if err := a.pool.Delete(partID); err != nil {
		return err
	}
	a.mu.Lock()
	delete(a.partByURI, id)
	a.mu.Unlock()
	return a.Publish()
}

// CreateConnection attaches the referenced partition to the initiator.
// The partition is referenced through the connection's target endpoint
// whose leaf is the partition resource id.
func (a *Agent) CreateConnection(conn *redfish.Connection) error {
	if len(conn.Links.InitiatorEndpoints) != 1 || len(conn.Links.TargetEndpoints) != 1 {
		return ErrBadConnection
	}
	host := conn.Links.InitiatorEndpoints[0].ODataID.Leaf()
	partURI := a.chassisID.Append("Processors", conn.Links.TargetEndpoints[0].ODataID.Leaf())
	a.mu.Lock()
	partID, ok := a.partByURI[partURI]
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPartition, partURI)
	}
	if err := a.pool.Attach(partID, host); err != nil {
		return fmt.Errorf("gpuagent: attach: %w", err)
	}
	conn.ConnectionType = "Memory"
	a.mu.Lock()
	a.conns[conn.ODataID] = partID
	a.mu.Unlock()
	return a.Publish()
}

// DeleteConnection detaches the partition.
func (a *Agent) DeleteConnection(id odata.ID) error {
	a.mu.Lock()
	partID, ok := a.conns[id]
	delete(a.conns, id)
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("gpuagent: unknown connection %s", id)
	}
	if err := a.pool.Detach(partID); err != nil {
		return err
	}
	return a.Publish()
}

// CreateZone accepts zone bookkeeping.
func (a *Agent) CreateZone(zone *redfish.Zone) error { return nil }

// DeleteZone accepts zone removal.
func (a *Agent) DeleteZone(id odata.ID) error { return nil }

// Patch rejects hardware property changes.
func (a *Agent) Patch(id odata.ID, patch map[string]any) error {
	return fmt.Errorf("%w: PATCH %s", ErrUnsupported, id)
}

func (a *Agent) partitionResource(uri odata.ID, partID string, slices int, host string) redfish.Processor {
	res := redfish.Processor{
		Resource:      odata.NewResource(uri, redfish.TypeProcessor, partID),
		ProcessorType: "GPU",
		Status:        odata.StatusOK(),
		TotalCores:    slices,
	}
	if host != "" {
		res.Desc = "attached to " + host
		res.Status.State = odata.StateComposed
	}
	return res
}

// Publish rebuilds and pushes the agent's subtrees from pool state.
// Publishes are serialized so snapshots advance monotonically.
func (a *Agent) Publish() error {
	a.pubMu.Lock()
	defer a.pubMu.Unlock()
	fab := make(map[odata.ID]any)
	cha := make(map[odata.ID]any)

	fab[a.fabricID] = redfish.Fabric{
		Resource:    odata.NewResource(a.fabricID, redfish.TypeFabric, a.fabricID.Leaf()+" Fabric"),
		FabricType:  redfish.ProtocolPCIe,
		Status:      odata.StatusOK(),
		Endpoints:   redfish.Ref(a.fabricID.Append("Endpoints")),
		Zones:       redfish.Ref(a.fabricID.Append("Zones")),
		Connections: redfish.Ref(a.fabricID.Append("Connections")),
	}
	cha[a.chassisID] = redfish.Chassis{
		Resource:    odata.NewResource(a.chassisID, redfish.TypeChassis, a.chassisID.Leaf()),
		ChassisType: "Shelf",
		Status:      odata.StatusOK(),
	}

	for _, g := range a.pool.GPUs() {
		gpuURI := a.chassisID.Append("GPUs", g.ID)
		cha[gpuURI] = redfish.Processor{
			Resource:      odata.NewResource(gpuURI, redfish.TypeProcessor, g.ID),
			ProcessorType: "GPU",
			Model:         g.Model,
			TotalCores:    g.Slices,
			Status:        odata.StatusOK(),
		}
	}

	a.mu.Lock()
	partURIs := make(map[string]odata.ID, len(a.partByURI))
	for uri, id := range a.partByURI {
		partURIs[id] = uri
	}
	a.mu.Unlock()
	for _, p := range a.pool.Partitions() {
		uri, ok := partURIs[p.ID]
		if !ok {
			continue
		}
		cha[uri] = a.partitionResource(uri, p.ID, p.Slices, p.Host)
		epURI := a.fabricID.Append("Endpoints", uri.Leaf())
		fab[epURI] = redfish.Endpoint{
			Resource:         odata.NewResource(epURI, redfish.TypeEndpoint, "Partition "+p.ID),
			EndpointProtocol: redfish.ProtocolPCIe,
			ConnectedEntities: []redfish.ConnectedEntity{{
				EntityType: "Processor", EntityRole: "Target", EntityLink: redfish.Ref(uri),
			}},
			Status: odata.StatusOK(),
		}
	}

	keep := []odata.ID{a.fabricID.Append("Zones"), a.fabricID.Append("Connections")}
	if err := a.conn.PublishSubtree(a.fabricID, fab, keep...); err != nil {
		return fmt.Errorf("gpuagent: publish fabric: %w", err)
	}
	if err := a.conn.PublishSubtree(a.chassisID, cha); err != nil {
		return fmt.Errorf("gpuagent: publish chassis: %w", err)
	}
	return nil
}

// Collections returns the collection URIs to register for this agent.
func (a *Agent) Collections() service.CollectionsPayload {
	return service.CollectionsPayload{
		a.fabricID.Append("Endpoints"):   {redfish.TypeEndpointCollection, "Endpoints"},
		a.fabricID.Append("Zones"):       {redfish.TypeZoneCollection, "Zones"},
		a.fabricID.Append("Connections"): {redfish.TypeConnectionCollection, "Connections"},
		a.chassisID.Append("GPUs"):       {redfish.TypeProcessorCollection, "GPUs"},
		a.chassisID.Append("Processors"): {redfish.TypeProcessorCollection, "GPU Partitions"},
	}
}

package gpuagent

import (
	"context"
	"errors"
	"testing"

	"ofmf/internal/agent"
	"ofmf/internal/emul/gpusim"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/service"
)

func newAgent(t *testing.T) (*service.Service, *gpusim.Pool, *Agent) {
	t.Helper()
	svc := service.New(service.Config{DirectWrites: true})
	t.Cleanup(svc.Close)
	pool := gpusim.New()
	if err := pool.AddGPU("gpu0", "A100", 40960, 7); err != nil {
		t.Fatal(err)
	}
	ag := New(&agent.Local{Service: svc}, pool, "PCIe", "GPUPool")
	for uri, meta := range ag.Collections() {
		svc.Store().RegisterCollection(uri, meta[0], meta[1])
	}
	if err := ag.Start(); err != nil {
		t.Fatal(err)
	}
	return svc, pool, ag
}

func TestPublishContents(t *testing.T) {
	svc, _, ag := newAgent(t)
	st := svc.Store()
	for _, id := range []odata.ID{
		ag.FabricID(),
		ag.ChassisID(),
		ag.ChassisID().Append("GPUs", "gpu0"),
	} {
		if !st.Exists(id) {
			t.Errorf("missing %s", id)
		}
	}
	var gpu redfish.Processor
	if err := st.GetAs(ag.ChassisID().Append("GPUs", "gpu0"), &gpu); err != nil {
		t.Fatal(err)
	}
	if gpu.ProcessorType != "GPU" || gpu.TotalCores != 7 {
		t.Errorf("gpu = %+v", gpu)
	}
}

func TestPartitionLifecycle(t *testing.T) {
	svc, pool, ag := newAgent(t)
	procs := ag.ChassisID().Append("Processors")
	uri, err := svc.ProvisionResource(context.Background(), procs, []byte(`{"Oem":{"OFMF":{"Slices":3}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if pool.FreeSlices() != 4 {
		t.Errorf("free = %d", pool.FreeSlices())
	}
	// Endpoint published for the partition.
	ep := ag.FabricID().Append("Endpoints", uri.Leaf())
	if !svc.Store().Exists(ep) {
		t.Errorf("missing endpoint %s", ep)
	}
	// Attach.
	conn := redfish.Connection{
		Resource: odata.NewResource(ag.FabricID().Append("Connections", "1"), redfish.TypeConnection, "c"),
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{odata.NewRef(service.SystemsURI.Append("nodeX"))},
			TargetEndpoints:    []odata.Ref{odata.NewRef(ep)},
		},
	}
	if err := ag.CreateConnection(&conn); err != nil {
		t.Fatal(err)
	}
	parts := pool.Partitions()
	if parts[0].Host != "nodeX" {
		t.Errorf("host = %q", parts[0].Host)
	}
	// Published partition shows the attachment.
	var proc redfish.Processor
	if err := svc.Store().GetAs(uri, &proc); err != nil {
		t.Fatal(err)
	}
	if proc.Status.State != odata.StateComposed {
		t.Errorf("state = %s", proc.Status.State)
	}
	// Deleting an attached partition fails; detach first.
	if err := ag.DeleteResource(uri); err == nil {
		t.Error("attached partition deleted")
	}
	if err := ag.DeleteConnection(conn.ODataID); err != nil {
		t.Fatal(err)
	}
	if err := ag.DeleteResource(uri); err != nil {
		t.Fatal(err)
	}
	if pool.FreeSlices() != 7 {
		t.Errorf("free = %d", pool.FreeSlices())
	}
}

func TestConnectionValidation(t *testing.T) {
	_, _, ag := newAgent(t)
	if err := ag.CreateConnection(&redfish.Connection{}); !errors.Is(err, ErrBadConnection) {
		t.Errorf("err = %v", err)
	}
	conn := redfish.Connection{
		Links: redfish.ConnectionLinks{
			InitiatorEndpoints: []odata.Ref{odata.NewRef(service.SystemsURI.Append("nodeX"))},
			TargetEndpoints:    []odata.Ref{odata.NewRef(ag.FabricID().Append("Endpoints", "ghost"))},
		},
	}
	if err := ag.CreateConnection(&conn); !errors.Is(err, ErrUnknownPartition) {
		t.Errorf("err = %v", err)
	}
	if err := ag.DeleteConnection("/redfish/v1/Fabrics/PCIe/Connections/9"); err == nil {
		t.Error("unknown delete accepted")
	}
}

func TestProvisionValidation(t *testing.T) {
	_, _, ag := newAgent(t)
	procs := ag.ChassisID().Append("Processors")
	if _, err := ag.CreateResource(ag.ChassisID().Append("GPUs"), "/x", []byte(`{}`)); !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v", err)
	}
	// Default slice count is 1.
	uri, err := ag.CreateResource(procs, procs.Append("d"), []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	proc := uri.(redfish.Processor)
	if proc.TotalCores != 1 {
		t.Errorf("default slices = %d", proc.TotalCores)
	}
	// Over capacity.
	if _, err := ag.CreateResource(procs, procs.Append("e"), []byte(`{"Oem":{"OFMF":{"Slices":100}}}`)); err == nil {
		t.Error("oversized partition accepted")
	}
	// Explicit GPU selection.
	if _, err := ag.CreateResource(procs, procs.Append("f"), []byte(`{"Oem":{"OFMF":{"GPU":"ghost"}}}`)); err == nil {
		t.Error("unknown gpu accepted")
	}
	if err := ag.DeleteResource(procs.Append("nope")); !errors.Is(err, ErrUnknownPartition) {
		t.Errorf("err = %v", err)
	}
}

func TestPatchUnsupported(t *testing.T) {
	_, _, ag := newAgent(t)
	if err := ag.Patch(ag.ChassisID().Append("GPUs", "gpu0"), map[string]any{"Model": "x"}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v", err)
	}
}

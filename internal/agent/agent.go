// Package agent provides the OFMF Agent framework. Agents are the
// technology-specific translators on the right side of the paper's
// architecture diagram: each one owns a fabric subtree of the OFMF's
// Redfish tree, publishes the resources its hardware exposes, forwards
// hardware events upward, and applies fabric mutations (zones,
// connections, port state) the OFMF forwards to it.
//
// An agent talks to the OFMF through a Conn. Local connects directly to an
// in-process service instance; Remote speaks HTTP to a standalone OFMF, so
// the same agent implementations run in both deployments.
package agent

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"ofmf/internal/obsv"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/resilience"
	"ofmf/internal/service"
)

// Conn is an agent's channel to the OFMF.
type Conn interface {
	// Register announces the agent and its owned subtrees to the
	// AggregationService, returning the AggregationSource URI.
	Register(src redfish.AggregationSource) (odata.ID, error)
	// PublishSubtree replaces the agent's resource subtree in the OFMF
	// tree. Resources absent from the map are removed, except those under
	// a keep prefix (OFMF-owned zones and connections).
	PublishSubtree(prefix odata.ID, resources map[odata.ID]any, keep ...odata.ID) error
	// PublishEvent forwards a hardware event into the OFMF event service.
	PublishEvent(rec redfish.EventRecord)
	// AttachHandler wires the agent's fabric handler so the OFMF forwards
	// fabric mutations to it.
	AttachHandler(h service.FabricHandler) error
	// DetachHandler removes the handler for the fabric.
	DetachHandler(fabricID odata.ID)
	// TouchSource refreshes the aggregation source's heartbeat timestamp.
	TouchSource(sourceURI odata.ID, timestamp string) error
	// RegisterCollections declares the agent's collection URIs so the
	// OFMF serves them as browsable collections.
	RegisterCollections(colls service.CollectionsPayload) error
}

// Local connects an agent to an in-process OFMF service.
type Local struct {
	Service *service.Service
}

// Register registers the aggregation source through the service's
// serialized registration path, so local agents get the same
// HostName-dedup semantics as remote ones.
func (l *Local) Register(src redfish.AggregationSource) (odata.ID, error) {
	stored, _, err := l.Service.RegisterAggregationSource(context.Background(), src)
	if err != nil {
		return "", err
	}
	return stored.ODataID, nil
}

// PublishSubtree installs the subtree into the service store.
func (l *Local) PublishSubtree(prefix odata.ID, resources map[odata.ID]any, keep ...odata.ID) error {
	return l.Service.Store().PutSubtree(prefix, resources, keep...)
}

// PublishEvent publishes on the service bus.
func (l *Local) PublishEvent(rec redfish.EventRecord) {
	l.Service.Bus().Publish(rec)
}

// AttachHandler registers the handler with the service.
func (l *Local) AttachHandler(h service.FabricHandler) error {
	l.Service.RegisterFabricHandler(h)
	return nil
}

// DetachHandler unregisters the handler.
func (l *Local) DetachHandler(fabricID odata.ID) {
	l.Service.UnregisterFabricHandler(fabricID)
}

// TouchSource patches the aggregation source's heartbeat through the
// service so liveness metrics see local heartbeats exactly like remote
// HTTP ones.
func (l *Local) TouchSource(sourceURI odata.ID, timestamp string) error {
	return l.Service.PatchResource(context.Background(), sourceURI, heartbeatPatch(timestamp), "")
}

func heartbeatPatch(timestamp string) map[string]any {
	return map[string]any{"Oem": map[string]any{"OFMF": map[string]any{"LastHeartbeat": timestamp}}}
}

// RegisterCollections registers the collections directly in the store.
func (l *Local) RegisterCollections(colls service.CollectionsPayload) error {
	for uri, meta := range colls {
		l.Service.Store().RegisterCollection(uri, meta[0], meta[1])
	}
	return nil
}

// Remote connects an agent to a standalone OFMF over HTTP. CallbackURL is
// the base URL of the agent's own ops server (see Serve); the OFMF
// forwards fabric mutations there.
//
// Unless Client overrides it, all calls run through a resilient
// transport: per-attempt timeouts, capped exponential backoff with
// jitter, and a circuit breaker that fails fast while the OFMF is down
// and probes it back. Every control-plane operation is retried — they
// are idempotent by construction (subtree publication replaces the
// subtree, heartbeats carry absolute timestamps, collection and agent
// registration are deduplicated by the OFMF).
type Remote struct {
	BaseURL     string // OFMF base, e.g. http://host:8080
	CallbackURL string
	Token       string // X-Auth-Token when the OFMF enforces auth
	// Client overrides the default resilient transport entirely.
	Client *http.Client
	// Policy tunes the default transport's fault handling; nil means
	// resilience.DefaultPolicy.
	Policy *resilience.Policy
	// SpoolSize bounds the undelivered-event spool (default 1024).
	SpoolSize int

	clientOnce sync.Once
	defClient  *http.Client

	spool eventSpool

	mu       sync.Mutex
	handlers map[odata.ID]service.FabricHandler
}

// maxResponseBytes caps OFMF response bodies read by the agent, so a
// misbehaving (or spoofed) server cannot balloon agent memory.
const maxResponseBytes = 8 << 20

func (r *Remote) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	r.clientOnce.Do(func() {
		p := resilience.DefaultPolicy()
		if r.Policy != nil {
			p = *r.Policy
		}
		r.defClient = &http.Client{Transport: &resilience.Transport{
			Policy:    p,
			Retryable: resilience.RetryAll,
		}}
	})
	return r.defClient
}

func (r *Remote) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("agent: marshal: %w", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, r.BaseURL+path, rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate trace identity (traceparent + X-Request-Id) when the
	// caller's context carries one, so agent-initiated calls join the
	// distributed trace recorded by the OFMF's middleware.
	obsv.InjectHeaders(ctx, req.Header)
	if r.Token != "" {
		req.Header.Set("X-Auth-Token", r.Token)
	}
	resp, err := r.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		return err
	}
	if len(data) > maxResponseBytes {
		return fmt.Errorf("agent: %s %s response exceeds %d bytes", method, path, maxResponseBytes)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("agent: %s %s returned %s: %s", method, path, resp.Status, data)
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// Register POSTs the aggregation source, advertising the callback URL.
func (r *Remote) Register(src redfish.AggregationSource) (odata.ID, error) {
	if src.HostName == "" {
		src.HostName = r.CallbackURL
	}
	var created redfish.AggregationSource
	if err := r.do(context.Background(), http.MethodPost, string(service.AggregationSourcesURI), src, &created); err != nil {
		return "", err
	}
	return created.ODataID, nil
}

// PublishSubtree pushes the subtree through the OFMF's OEM aggregation
// endpoint.
func (r *Remote) PublishSubtree(prefix odata.ID, resources map[odata.ID]any, keep ...odata.ID) error {
	payload := service.SubtreePayload{Prefix: prefix, Keep: keep, Resources: make(map[odata.ID]json.RawMessage, len(resources))}
	for id, v := range resources {
		b, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("agent: marshal %s: %w", id, err)
		}
		payload.Resources[id] = b
	}
	return r.do(context.Background(), http.MethodPost, string(service.SubtreeOemURI), payload, nil)
}

// PublishEvent pushes the record through the OFMF's OEM event endpoint.
// Records are never silently discarded: every event enters a bounded
// FIFO spool that is drained in order while the OFMF is reachable and
// retried on reconnect (the next successful heartbeat or publish).
// Only spool overflow loses records — oldest first, counted by
// EventsDropped.
func (r *Remote) PublishEvent(rec redfish.EventRecord) {
	r.spool.add(rec, r.SpoolSize)
	r.drainSpool()
}

// drainSpool delivers spooled events head-of-line until the spool is
// empty or a delivery fails. A single drainer runs at a time, keeping
// delivery FIFO. Events published mid-drain land in the spool's live
// side-buffer; endDrain merges them back and reports the remainder, so
// a healthy drainer loops until the spool is truly empty instead of
// stranding them until the next reconnect signal.
func (r *Remote) drainSpool() {
	for {
		if !r.spool.beginDrain() {
			return
		}
		healthy := true
		for {
			rec, ok := r.spool.peek()
			if !ok {
				break
			}
			if err := r.do(context.Background(), http.MethodPost, string(service.EventsOemURI), rec, nil); err != nil {
				healthy = false
				break
			}
			r.spool.pop()
		}
		if pending := r.spool.endDrain(); pending == 0 || !healthy {
			return
		}
	}
}

// EventBacklog returns the number of events spooled awaiting delivery.
func (r *Remote) EventBacklog() int { return r.spool.size() }

// DropSpool models an agent process crash: the in-memory spool dies
// with the process, so every undelivered event is discarded and counted
// as dropped (the chaos harness's conservation ledger needs the loss
// attributed, not vanished). Returns the number of records lost. Call
// it only with no drain in flight — a crashed process has no drainer.
func (r *Remote) DropSpool() int { return r.spool.reset() }

// EventsDelivered returns the number of events delivered to the OFMF.
func (r *Remote) EventsDelivered() int64 {
	delivered, _ := r.spool.stats()
	return delivered
}

// EventsDropped returns the number of events lost to spool overflow —
// the ofmf_agent_events_dropped_total metric reads it.
func (r *Remote) EventsDropped() int64 {
	_, dropped := r.spool.stats()
	return dropped
}

// TouchSource PATCHes the aggregation source's heartbeat over HTTP. A
// successful beat doubles as the reconnect signal: any spooled events
// are flushed before it returns.
func (r *Remote) TouchSource(sourceURI odata.ID, timestamp string) error {
	err := r.do(context.Background(), http.MethodPatch, string(sourceURI), heartbeatPatch(timestamp), nil)
	if err == nil && r.spool.size() > 0 {
		r.drainSpool()
	}
	return err
}

// RegisterCollections pushes the collection declarations through the
// OFMF's OEM endpoint.
func (r *Remote) RegisterCollections(colls service.CollectionsPayload) error {
	return r.do(context.Background(), http.MethodPost, string(service.CollectionsOemURI), colls, nil)
}

// AttachHandler records the handler locally; the OFMF forwards operations
// to the callback server which dispatches to it.
func (r *Remote) AttachHandler(h service.FabricHandler) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.handlers == nil {
		r.handlers = make(map[odata.ID]service.FabricHandler)
	}
	r.handlers[h.FabricID()] = h
	return nil
}

// DetachHandler removes a handler from the callback dispatch table.
func (r *Remote) DetachHandler(fabricID odata.ID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.handlers, fabricID)
}

// Handler returns the HTTP handler of the agent's ops server, dispatching
// forwarded operations to attached fabric handlers.
func (r *Remote) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/agent/ops", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			opsError(w, http.StatusMethodNotAllowed, "Base.1.0.OperationNotAllowed", "POST only")
			return
		}
		var op service.OpRequest
		if err := json.NewDecoder(req.Body).Decode(&op); err != nil {
			opsError(w, http.StatusBadRequest, "Base.1.0.MalformedJSON", err.Error())
			return
		}
		r.mu.Lock()
		var h service.FabricHandler
		for fid, cand := range r.handlers {
			if op.Target.Under(fid) {
				h = cand
				break
			}
		}
		r.mu.Unlock()
		if h == nil {
			opsError(w, http.StatusNotFound, "Base.1.0.ResourceMissingAtURI", "no handler for "+string(op.Target))
			return
		}
		resp, err := dispatchOp(h, op)
		if err != nil {
			opsError(w, http.StatusBadRequest, "OFMF.1.0.AgentOperationFailed", err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
	return mux
}

// opsError writes the same Redfish extended-error envelope the OFMF
// itself emits, so clients see one error shape on both sides of the wire.
func opsError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(service.RedfishError(status, code, message))
}

func dispatchOp(h service.FabricHandler, op service.OpRequest) (service.OpResponse, error) {
	switch op.Op {
	case "CreateZone":
		var zone redfish.Zone
		if err := json.Unmarshal(op.Resource, &zone); err != nil {
			return service.OpResponse{}, err
		}
		if err := h.CreateZone(&zone); err != nil {
			return service.OpResponse{}, err
		}
		b, err := json.Marshal(zone)
		return service.OpResponse{Resource: b}, err
	case "DeleteZone":
		return service.OpResponse{}, h.DeleteZone(op.Target)
	case "CreateConnection":
		var conn redfish.Connection
		if err := json.Unmarshal(op.Resource, &conn); err != nil {
			return service.OpResponse{}, err
		}
		if err := h.CreateConnection(&conn); err != nil {
			return service.OpResponse{}, err
		}
		b, err := json.Marshal(conn)
		return service.OpResponse{Resource: b}, err
	case "DeleteConnection":
		return service.OpResponse{}, h.DeleteConnection(op.Target)
	case "Patch":
		return service.OpResponse{}, h.Patch(op.Target, op.Patch)
	case "CreateResource":
		prov, ok := h.(service.ResourceProvisioner)
		if !ok {
			return service.OpResponse{}, fmt.Errorf("agent: handler cannot provision resources")
		}
		res, err := prov.CreateResource(op.Target, op.URI, op.Resource)
		if err != nil {
			return service.OpResponse{}, err
		}
		b, err := json.Marshal(res)
		return service.OpResponse{Resource: b}, err
	case "DeleteResource":
		prov, ok := h.(service.ResourceProvisioner)
		if !ok {
			return service.OpResponse{}, fmt.Errorf("agent: handler cannot provision resources")
		}
		return service.OpResponse{}, prov.DeleteResource(op.Target)
	default:
		return service.OpResponse{}, fmt.Errorf("agent: unknown op %q", op.Op)
	}
}

// HeartbeatOption customizes StartHeartbeat.
type HeartbeatOption func(*heartbeatConfig)

type heartbeatConfig struct {
	report func(consecutive int, err error)
}

// WithHeartbeatReport registers a callback invoked after every beat
// with the consecutive-failure count (0 after a success) and the beat's
// error, so the agent process can see a dead OFMF instead of the
// failures vanishing. The callback runs on the heartbeat goroutine.
func WithHeartbeatReport(fn func(consecutive int, err error)) HeartbeatOption {
	return func(c *heartbeatConfig) { c.report = fn }
}

// StartHeartbeat periodically refreshes the aggregation source's
// LastHeartbeat until the returned stop function is called, letting the
// OFMF (and monitoring clients) detect dead agents. The first beat is
// sent immediately — a just-registered agent must not look dead for a
// full interval — and per-beat outcomes are surfaced through
// WithHeartbeatReport.
func StartHeartbeat(conn Conn, sourceURI odata.ID, interval time.Duration, opts ...HeartbeatOption) (stop func()) {
	var cfg heartbeatConfig
	for _, o := range opts {
		o(&cfg)
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		consecutive := 0
		beat := func() {
			err := conn.TouchSource(sourceURI, redfish.Timestamp(time.Now()))
			if err != nil {
				consecutive++
			} else {
				consecutive = 0
			}
			if cfg.report != nil {
				cfg.report(consecutive, err)
			}
		}
		beat()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				beat()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}

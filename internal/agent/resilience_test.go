package agent_test

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"ofmf/internal/agent"
	"ofmf/internal/events"
	"ofmf/internal/odata"
	"ofmf/internal/redfish"
	"ofmf/internal/resilience"
	"ofmf/internal/service"
)

// flakyRemote builds a Remote whose every request crosses a transport
// injecting the given error rate, with retries tuned fast for tests and
// the breaker disabled so statistics, not fail-fast, are under test.
func flakyRemote(baseURL string, errorRate float64, seed int64) (*agent.Remote, *resilience.FaultTransport) {
	fault := &resilience.FaultTransport{ErrorRate: errorRate, Seed: seed}
	remote := &agent.Remote{
		BaseURL:     baseURL,
		CallbackURL: "http://127.0.0.1:1",
		Client: &http.Client{Transport: &resilience.Transport{
			Base: fault,
			Policy: resilience.Policy{
				AttemptTimeout: 2 * time.Second,
				MaxAttempts:    12,
				Backoff:        resilience.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond},
				Breaker:        resilience.BreakerConfig{Threshold: -1},
			},
			Retryable: resilience.RetryAll,
		}},
	}
	return remote, fault
}

// TestAgentConvergesUnderInjectedFaults drives the full agent control
// plane — register, publish subtree, publish events, heartbeat — through
// a transport that fails 30% of requests, and requires every operation
// to converge with zero lost events.
func TestAgentConvergesUnderInjectedFaults(t *testing.T) {
	tb := newTestbed(t)
	remote, fault := flakyRemote(tb.srv.URL, 0.3, 11)

	// Record every event the OFMF's bus actually receives.
	var mu sync.Mutex
	got := make(map[string]bool)
	if _, err := tb.svc.Bus().Subscribe(events.SinkFunc(func(_ context.Context, ev redfish.Event) error {
		mu.Lock()
		defer mu.Unlock()
		for _, rec := range ev.Events {
			got[rec.EventID] = true
		}
		return nil
	}), events.Filter{EventTypes: []string{redfish.EventAlert}}, "test"); err != nil {
		t.Fatal(err)
	}

	fabricURI := odata.ID("/redfish/v1/Fabrics/Flaky")
	uri, err := remote.Register(redfish.AggregationSource{
		Resource: odata.Resource{Name: "Flaky Agent"},
		Oem:      redfish.AggSourceOem{OFMF: &redfish.AgentDescriptor{Technology: "CXL", Version: "1.0"}},
		Links:    redfish.AggSourceLinks{ResourcesAccessed: []odata.Ref{odata.NewRef(fabricURI)}},
	})
	if err != nil {
		t.Fatalf("register never converged: %v", err)
	}

	fab := redfish.Fabric{Resource: odata.NewResource(fabricURI, redfish.TypeFabric, "Flaky")}
	if err := remote.PublishSubtree(fabricURI, map[odata.ID]any{fabricURI: fab}); err != nil {
		t.Fatalf("publish subtree never converged: %v", err)
	}
	var gotFab redfish.Fabric
	if err := tb.svc.Store().GetAs(fabricURI, &gotFab); err != nil {
		t.Fatalf("published fabric missing from tree: %v", err)
	}

	const n = 40
	for i := 0; i < n; i++ {
		remote.PublishEvent(events.Record(redfish.EventAlert,
			fmt.Sprintf("flaky-%d", i), "injected-fault test event", fabricURI))
	}
	// Heartbeats double as the reconnect signal that flushes the spool.
	deadline := time.Now().Add(30 * time.Second)
	for remote.EventBacklog() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("event backlog stuck at %d", remote.EventBacklog())
		}
		_ = remote.TouchSource(uri, redfish.Timestamp(time.Now()))
	}
	if err := remote.TouchSource(uri, redfish.Timestamp(time.Now())); err != nil {
		t.Fatalf("heartbeat never converged: %v", err)
	}

	if dropped := remote.EventsDropped(); dropped != 0 {
		t.Errorf("events dropped = %d, want 0", dropped)
	}
	if delivered := remote.EventsDelivered(); delivered != n {
		t.Errorf("events delivered = %d, want %d", delivered, n)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		received := len(got)
		mu.Unlock()
		if received == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("OFMF bus saw %d/%d events", received, n)
		}
		time.Sleep(2 * time.Millisecond)
	}

	var src redfish.AggregationSource
	if err := tb.svc.Store().GetAs(uri, &src); err != nil {
		t.Fatal(err)
	}
	if src.Oem.OFMF == nil || src.Oem.OFMF.LastHeartbeat == "" {
		t.Error("heartbeat not recorded on the aggregation source")
	}
	if fault.Injected() == 0 {
		t.Error("fault transport injected nothing; test exercised no failures")
	}
}

// TestRegisterRetryDoesNotDuplicateSource covers the idempotent-
// registration contract the agent's RetryAll transport depends on: a
// retried POST of the same HostName must update the existing source, not
// mint a second one.
func TestRegisterRetryDoesNotDuplicateSource(t *testing.T) {
	tb := newTestbed(t)
	remote := &agent.Remote{BaseURL: tb.srv.URL, CallbackURL: "http://127.0.0.1:2"}

	src := redfish.AggregationSource{
		Resource: odata.Resource{Name: "Agent A"},
		Oem:      redfish.AggSourceOem{OFMF: &redfish.AgentDescriptor{Technology: "NVMeOverFabrics"}},
	}
	first, err := remote.Register(src)
	if err != nil {
		t.Fatal(err)
	}
	second, err := remote.Register(src)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("re-registration minted a new source: %s then %s", first, second)
	}
	members, err := tb.svc.Store().Members(service.AggregationSourcesURI)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 {
		t.Errorf("aggregation sources = %d, want 1", len(members))
	}
	// Re-registration revives a source the sweeper had downgraded.
	var stored redfish.AggregationSource
	if err := tb.svc.Store().GetAs(first, &stored); err != nil {
		t.Fatal(err)
	}
	if stored.Status.Health != "OK" {
		t.Errorf("re-registered source health = %q", stored.Status.Health)
	}
}

// TestHeartbeatReportsConsecutiveFailures verifies the heartbeat loop
// beats immediately and surfaces failures to its report callback instead
// of swallowing them.
func TestHeartbeatReportsConsecutiveFailures(t *testing.T) {
	tb := newTestbed(t)
	remote := &agent.Remote{BaseURL: tb.srv.URL, CallbackURL: "http://127.0.0.1:3"}
	uri, err := remote.Register(redfish.AggregationSource{
		Resource: odata.Resource{Name: "Beater"},
		Oem:      redfish.AggSourceOem{OFMF: &redfish.AgentDescriptor{Technology: "GPU"}},
	})
	if err != nil {
		t.Fatal(err)
	}

	type beat struct {
		consecutive int
		err         error
	}
	beats := make(chan beat, 64)
	stop := agent.StartHeartbeat(remote, uri, time.Hour, agent.WithHeartbeatReport(
		func(consecutive int, err error) {
			beats <- beat{consecutive, err}
		}))
	defer stop()

	// The first beat arrives immediately, not one interval in.
	select {
	case b := <-beats:
		if b.err != nil || b.consecutive != 0 {
			t.Fatalf("first beat = %+v", b)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no immediate first heartbeat")
	}
	var src redfish.AggregationSource
	if err := tb.svc.Store().GetAs(uri, &src); err != nil {
		t.Fatal(err)
	}
	if src.Oem.OFMF == nil || src.Oem.OFMF.LastHeartbeat == "" {
		t.Error("immediate beat did not record LastHeartbeat")
	}
	stop()

	// Against a dead OFMF the failure count climbs instead of vanishing.
	dead := &agent.Remote{BaseURL: "http://127.0.0.1:1", Client: &http.Client{
		Transport: &resilience.Transport{Policy: resilience.Policy{
			AttemptTimeout: 200 * time.Millisecond,
			MaxAttempts:    1,
			Breaker:        resilience.BreakerConfig{Threshold: -1},
		}},
	}}
	beats2 := make(chan beat, 64)
	stop2 := agent.StartHeartbeat(dead, uri, time.Millisecond, agent.WithHeartbeatReport(
		func(consecutive int, err error) {
			beats2 <- beat{consecutive, err}
		}))
	defer stop2()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case b := <-beats2:
			if b.err == nil {
				t.Fatal("beat against dead OFMF reported success")
			}
			if b.consecutive >= 3 {
				return
			}
		case <-deadline:
			t.Fatal("consecutive failure count never reached 3")
		}
	}
}
